"""Live ops plane: sampler, OBS_* wire ops, push streams, `tardis top`.

Covers docs/internals.md §14 end to end — the ObsSampler snapshot
schema, worker health, the subscribe/unsubscribe round trips over a real
socket, slow-consumer drop accounting, disconnect cleanup, the
sampler-off oracle-equivalence guard, and the dashboard renderer.
"""

import asyncio
import json
import socket
import struct
import time

import pytest

from repro import TardisStore
from repro.client import AsyncTardisClient, TardisClient
from repro.errors import ServerError
from repro.obs.sampler import OBS_SCHEMA_VERSION, ObsSampler
from repro.server import start_in_thread
from repro.server.protocol import HEADER, PROTOCOL_VERSION
from repro.tools.cli import main as cli_main


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def served_live():
    """A server with the sampler on a fast cadence."""
    handle = start_in_thread(site="obs-test", obs_sample_interval=0.05)
    yield handle
    if handle.server.report is None:
        handle.stop()


@pytest.fixture
def served_cold():
    """A server with no sampler task (OBS_SNAPSHOT still works)."""
    handle = start_in_thread(site="obs-cold")
    yield handle
    if handle.server.report is None:
        handle.stop()


# ---------------------------------------------------------------------------
# ObsSampler unit: schema, series, triggers — no server involved.


class TestObsSampler:
    def test_snapshot_schema_and_seq(self):
        store = TardisStore("A")
        store.put("x", 1)
        sampler = ObsSampler(store, site="A")
        first = sampler.sample()
        second = sampler.sample()
        assert first["obs_schema"] == OBS_SCHEMA_VERSION
        assert (first["seq"], second["seq"]) == (1, 2)
        assert second["t_ms"] >= first["t_ms"]
        for key in ("branch_count", "dag_width", "dag_depth", "merge_debt",
                    "staleness_ms", "states"):
            assert key in second["gauges"]
        assert second["counters"]["store_commits"] == store.metrics.commits
        assert second["shards"] is None  # flat store: no shard section
        assert "tardis_branch_count@A" in second["series"]
        assert sampler.latest is second
        # Snapshots must survive the wire codec untouched.
        assert json.loads(json.dumps(second)) == second

    def test_branch_count_tracks_forks(self):
        store = TardisStore("A")
        alice, bruno = store.session("alice"), store.session("bruno")
        store.put("x", 0, session=alice)
        t1 = store.begin(session=alice)
        t2 = store.begin(session=bruno)
        # Read-modify-write on the same key: the second commit fails the
        # end constraint and branches instead of rippling down.
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 10)
        t1.commit()
        t2.commit()
        sampler = ObsSampler(store, site="A")
        assert sampler.sample()["gauges"]["branch_count"] == 2

    def test_trim_views(self):
        store = TardisStore("A")
        sampler = ObsSampler(store, site="A")
        for _ in range(5):
            snapshot = sampler.sample()
        assert "series" not in ObsSampler.trim(snapshot, 0)
        cut = ObsSampler.trim(snapshot, 2)
        assert all(len(s) <= 2 for s in cut["series"].values())
        assert ObsSampler.trim(snapshot, None) is snapshot
        # trim never mutates its input
        assert len(snapshot["series"]["tardis_branch_count@A"]) == 5

    def test_alert_fires_on_held_excursion(self):
        store = TardisStore("A")
        clock = {"t": 0.0}
        sampler = ObsSampler(
            store, site="A", clock=lambda: clock["t"], triggers=()
        )
        sampler.arm("tardis_branch_count", 1.0, hold_ms=50.0)
        store.put("x", 0)
        txns = [store.begin(session=store.session("s%d" % i)) for i in range(3)]
        for i, txn in enumerate(txns):  # conflicting RMWs -> 3 leaves > 1
            txn.put("x", txn.get("x") + i + 1)
        for txn in txns:
            txn.commit()
        for _ in range(4):  # hold the excursion past hold_ms
            clock["t"] += 0.030
            snapshot = sampler.sample()
        assert snapshot["alerts_total"] >= 1
        alert = snapshot["alerts"][0]
        assert alert["series"] == "tardis_branch_count@A"
        assert alert["value"] > 1.0
        assert snapshot["flight_dumps"] >= 1
        assert sampler.flight.dumps[0]["reason"].startswith("live trip")

    def test_counters_and_gauges_callables_feed_series(self):
        store = TardisStore("A")
        sampler = ObsSampler(
            store,
            site="A",
            counters_fn=lambda: {"requests_total": 7, "commits": 3},
            gauges_fn=lambda: {"sessions": 2, "inflight": 1, "connections": 4},
            latency_fn=lambda: {"READ": {"count": 1, "mean": 0.5, "p50": 0.5,
                                         "p90": 0.5, "p99": 0.5, "max": 0.5}},
        )
        snapshot = sampler.sample()
        assert snapshot["gauges"]["sessions"] == 2
        assert snapshot["counters"]["requests_total"] == 7
        assert snapshot["latency_ms"]["READ"]["count"] == 1
        assert snapshot["series"]["tardis_net_requests@A"][-1][1] == 7
        assert snapshot["series"]["tardis_net_sessions@A"][-1][1] == 2


# ---------------------------------------------------------------------------
# Shard-plane health (satellite 2).


class TestWorkerHealth:
    def test_health_lists_every_worker_with_ping(self):
        store = TardisStore("A", engine="proc-sharded", shards=4, shard_workers=2)
        try:
            store.put("x", 1)
            health = store.shard_health()
            assert health["n_shards"] == 4
            assert health["n_workers"] == 2
            assert health["workers_alive"] == 2
            assert health["workers_dead"] == []
            assert health["leaked_workers"] == 0
            assert len(health["accesses"]) == 4
            for worker in health["workers"]:
                assert worker["alive"] is True
                assert worker["queue_depth"] == 0
                assert worker["ping_ms"] >= 0.0
        finally:
            store.close()

    def test_dead_worker_is_visible(self):
        store = TardisStore("A", engine="proc-sharded", shards=2, shard_workers=2)
        try:
            store.put("x", 1)
            store.versions.kill_worker(0)
            health = store.shard_health()
            assert health["workers_alive"] == 1
            assert health["workers_dead"] == [0]
        finally:
            store.close()

    def test_flat_store_has_no_shard_section(self):
        store = TardisStore("A")
        assert store.shard_health() is None

    def test_in_process_sharded_reports_accesses_only(self):
        store = TardisStore("A", engine="sharded", shards=4)
        store.put("x", 1)
        health = store.shard_health()
        assert health["n_shards"] == 4
        assert "workers" not in health

    def test_sampler_feeds_shard_series(self):
        store = TardisStore("A", engine="proc-sharded", shards=2, shard_workers=2)
        try:
            store.put("x", 1)
            sampler = ObsSampler(store, site="A")
            snapshot = sampler.sample()
            assert snapshot["shards"]["n_workers"] == 2
            assert "tardis_shard_accesses@s0" in snapshot["series"]
            assert "tardis_shard_queue_depth@w0" in snapshot["series"]
            assert snapshot["series"]["tardis_shard_workers_alive@A"][-1][1] == 2
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Wire ops: OBS_SNAPSHOT / STATS obs section.


class TestObsSnapshotOp:
    def test_snapshot_on_demand_without_sampler(self, served_cold):
        with TardisClient(port=served_cold.port) as client:
            client.put("x", 1)
            snapshot = client.obs_snapshot()
            assert snapshot["obs_schema"] == OBS_SCHEMA_VERSION
            assert snapshot["gauges"]["connections"] == 1
            assert snapshot["counters"]["requests_total"] > 0
            # The request's own op shows up in the latency table.
            assert "WRITE" in snapshot["latency_ms"]
            assert snapshot["latency_ms"]["WRITE"]["p99"] >= 0.0

    def test_tail_trims_series(self, served_cold):
        with TardisClient(port=served_cold.port) as client:
            for _ in range(4):
                client.obs_snapshot()
            cut = client.obs_snapshot(tail=2)
            assert all(len(s) <= 2 for s in cut["series"].values())
            assert "series" not in client.obs_snapshot(tail=0)

    def test_bad_tail_type_is_rejected(self, served_cold):
        with TardisClient(port=served_cold.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.obs_snapshot(tail="many")
            assert excinfo.value.code == "BAD_REQUEST"

    def test_stats_carries_obs_section(self, served_live):
        with TardisClient(port=served_live.port) as client:
            stats = client.stats()
            assert stats["obs"]["sampler"] is True
            assert stats["obs"]["interval_s"] == pytest.approx(0.05)
            assert stats["obs"]["subscribers"] == 0
            assert "series" not in stats["obs"]["snapshot"]  # light form
            assert "gauges" in stats["obs"]["snapshot"]

    def test_sampler_ticks_accumulate(self, served_live):
        with TardisClient(port=served_live.port) as client:
            assert _wait_until(lambda: client.stats()["obs_samples"] >= 2)


# ---------------------------------------------------------------------------
# Push streams: subscribe / frames / unsubscribe / drops / disconnect.


class TestObsSubscribe:
    def test_unavailable_without_sampler(self, served_cold):
        with TardisClient(port=served_cold.port) as client:
            with pytest.raises(ServerError) as excinfo:
                client.subscribe_obs()
            assert excinfo.value.code == "OBS_UNAVAILABLE"

    def test_frames_arrive_on_cadence_with_increasing_seq(self, served_live):
        with TardisClient(port=served_live.port) as client:
            sub = client.subscribe_obs()
            assert sub["interval_s"] == pytest.approx(0.05)
            assert sub["resumed"] is False
            frames = [client.next_obs_frame(timeout=5.0) for _ in range(3)]
            assert all(f is not None for f in frames)
            seqs = [f["seq"] for f in frames]
            assert seqs == sorted(seqs) and len(set(seqs)) == 3
            for frame in frames:
                assert frame["push"] == "obs"
                assert frame["dropped"] == 0
                assert frame["snapshot"]["obs_schema"] == OBS_SCHEMA_VERSION
            accounting = client.unsubscribe_obs()
            assert accounting["subscribed"] is True
            assert accounting["frames"] >= 3
            assert accounting["dropped"] == 0

    def test_requests_interleave_with_pushes(self, served_live):
        with TardisClient(port=served_live.port) as client:
            client.subscribe_obs()
            # Ordinary requests keep working while frames stream in; the
            # client diverts pushes so responses pair up strictly.
            for i in range(5):
                client.put("k%d" % i, i)
                time.sleep(0.02)
            assert client.get("k4") == 4
            frame = client.next_obs_frame(timeout=5.0)
            assert frame is not None and frame["push"] == "obs"
            client.unsubscribe_obs()

    def test_resubscribe_reports_resumed(self, served_live):
        with TardisClient(port=served_live.port) as client:
            assert client.subscribe_obs()["resumed"] is False
            assert client.subscribe_obs()["resumed"] is True
            client.unsubscribe_obs()

    def test_unsubscribe_is_idempotent(self, served_live):
        with TardisClient(port=served_live.port) as client:
            accounting = client.unsubscribe_obs()
            assert accounting == {
                "id": accounting["id"], "ok": True,
                "subscribed": False, "frames": 0, "dropped": 0,
            }

    def test_unsubscribed_stream_goes_quiet(self, served_live):
        with TardisClient(port=served_live.port) as client:
            client.subscribe_obs()
            assert client.next_obs_frame(timeout=5.0) is not None
            client.unsubscribe_obs()
            # Drain frames already in flight, then expect silence.
            while client.next_obs_frame(timeout=0.3) is not None:
                pass
            assert client.next_obs_frame(timeout=0.3) is None

    def test_slow_consumer_drops_are_counted(self, served_live):
        server = served_live.server
        with TardisClient(port=served_live.port) as client:
            client.subscribe_obs()
            assert _wait_until(lambda: len(server._obs_subs) == 1)
            sub = next(iter(server._obs_subs.values()))
            # Stall the delivery side: cancel the writer task so the
            # bounded queue fills and the sampler starts dropping.
            served_live.loop.call_soon_threadsafe(server._cancel_sub_writer, sub)
            assert _wait_until(lambda: sub.dropped > 0)
            accounting = client.unsubscribe_obs()
            assert accounting["dropped"] > 0
            assert client.stats()["obs_frames_dropped"] > 0

    def test_disconnect_while_subscribed_leaks_nothing(self, served_live):
        client = TardisClient(port=served_live.port)
        client.subscribe_obs()
        assert client.next_obs_frame(timeout=5.0) is not None
        client._sock.close()  # impolite: no BYE, no unsubscribe
        server = served_live.server
        assert _wait_until(lambda: len(server._obs_subs) == 0)
        assert _wait_until(lambda: len(server.store.sessions()) == 0)
        report = served_live.stop()
        assert report["leaked_sessions"] == []

    def test_subscription_drop_policy_unit(self):
        class _Writer:
            pass

        async def scenario():
            from repro.server.server import _ObsSubscription

            sub = _ObsSubscription(1, _Writer(), capacity=2)
            assert sub.offer({"seq": 1}) is True
            assert sub.offer({"seq": 2}) is True
            assert sub.offer({"seq": 3}) is False  # full: dropped
            assert sub.offer({"seq": 4}) is False
            assert sub.dropped == 2
            assert (await sub.queue.get())["seq"] == 1

        asyncio.run(scenario())


class TestAsyncClientObs:
    def test_async_subscribe_round_trip(self, served_live):
        async def scenario():
            client = await AsyncTardisClient.connect(port=served_live.port)
            snapshot = await client.obs_snapshot(tail=0)
            assert snapshot["obs_schema"] == OBS_SCHEMA_VERSION
            await client.subscribe_obs()
            frames = []
            for _ in range(2):
                frame = await client.next_obs_frame(timeout=5.0)
                assert frame is not None
                frames.append(frame["seq"])
            # Interleave a request: pushes must not break pairing.
            await client.put("k", "v")
            accounting = await client.unsubscribe_obs()
            assert accounting["subscribed"] is True
            assert frames == sorted(frames)
            await client.close()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Oracle-equivalence guard: the sampler must not change the protocol.


class TestSamplerOffEquivalence:
    SCRIPT = [
        {"op": "HELLO", "session": "oracle", "protocol": PROTOCOL_VERSION},
        {"op": "BEGIN"},
        {"op": "WRITE", "txn": 1, "key": "x", "value": 41},
        {"op": "COMMIT", "txn": 1},
        {"op": "BEGIN", "read_only": True},
        {"op": "READ", "txn": 2, "key": "x"},
        {"op": "READ_MANY", "txn": 2, "keys": ["x", "missing"]},
        {"op": "COMMIT", "txn": 2},
        {"op": "BYE"},
    ]

    @staticmethod
    def _run_script(port):
        """Drive the script over a raw socket; returns the reply bytes."""
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        replies = []
        try:
            for i, fields in enumerate(TestSamplerOffEquivalence.SCRIPT, start=1):
                request = dict(fields)
                request["id"] = i
                payload = json.dumps(
                    request, separators=(",", ":"), sort_keys=True
                ).encode()
                sock.sendall(HEADER.pack(len(payload)) + payload)
                header = b""
                while len(header) < 4:
                    header += sock.recv(4 - len(header))
                (length,) = struct.unpack(">I", header)
                body = b""
                while len(body) < length:
                    body += sock.recv(length - len(body))
                replies.append(body)
        finally:
            sock.close()
        return replies

    def test_responses_byte_identical_with_and_without_sampler(self):
        cold = start_in_thread(site="oracle")
        hot = start_in_thread(site="oracle", obs_sample_interval=0.02)
        try:
            baseline = self._run_script(cold.port)
            live = self._run_script(hot.port)
        finally:
            cold.stop()
            hot.stop()
        assert baseline == live


# ---------------------------------------------------------------------------
# Proc-sharded servers expose worker health over the wire.


class TestShardedObsOverWire:
    def test_snapshot_has_shard_section_and_sees_dead_worker(self):
        handle = start_in_thread(
            site="shard-obs",
            engine="proc-sharded",
            shards=4,
            shard_workers=2,
            obs_sample_interval=0.05,
        )
        try:
            with TardisClient(port=handle.port) as client:
                client.put("x", 1)
                snapshot = client.obs_snapshot()
                shards = snapshot["shards"]
                assert shards["n_shards"] == 4
                assert shards["workers_alive"] == 2
                assert shards["leaked_workers"] == 0
                handle.server.store.versions.kill_worker(0)
                assert _wait_until(
                    lambda: client.obs_snapshot()["shards"]["workers_dead"] == [0]
                )
        finally:
            handle.stop()


# ---------------------------------------------------------------------------
# `tardis top` (CLI).


class TestTardisTop:
    def test_one_shot_table(self, served_cold, capsys):
        with TardisClient(port=served_cold.port) as client:
            client.put("x", 1)
        rc = cli_main(["top", "--port", str(served_cold.port)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "tardis top — site=obs-cold" in out
        assert "branches=" in out
        assert "p99" in out  # latency table rendered

    def test_live_frames_against_streaming_server(self, served_live, capsys):
        with TardisClient(port=served_live.port) as client:
            for i in range(5):
                client.put("k%d" % i, i)
        rc = cli_main(
            ["top", "--port", str(served_live.port), "--live", "--frames", "2"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("tardis top — site=obs-test") == 2
        assert "COMMIT" in out  # per-op latency row made it through

    def test_live_falls_back_to_polling_without_sampler(self, served_cold, capsys):
        rc = cli_main(
            ["top", "--port", str(served_cold.port), "--live", "--frames", "2",
             "--interval", "0.05"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert out.count("tardis top — site=obs-cold") == 2

    def test_sparkline_shapes(self):
        from repro.tools.top import sparkline

        assert sparkline([], width=4) == "    "
        assert sparkline([0, 0, 0], width=3) == "▁▁▁"
        line = sparkline([0, 5, 10], width=3)
        assert line[0] == "▁" and line[-1] == "█"
        assert len(sparkline(list(range(100)), width=10)) == 10
