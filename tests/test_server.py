"""End-to-end tests for the network server: sessions, concurrency,
disconnect cleanup, graceful shutdown, and the wire error paths."""

import asyncio
import socket
import threading
import time

import pytest

from repro import TardisStore
from repro.client import AsyncTardisClient, TardisClient
from repro.errors import (
    BeginError,
    KeyNotFound,
    ServerError,
    ShardUnavailableError,
)
from repro.server import start_in_thread
from repro.server.protocol import HEADER, MAX_FRAME, FrameDecoder


def _wait_until(predicate, timeout=5.0, interval=0.02):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture
def served():
    handle = start_in_thread(site="net-test")
    yield handle
    if handle.server.report is None:
        handle.stop()


def _total_pins(store):
    return sum(state.pins for state in store.dag.states())


# ---------------------------------------------------------------------------
# Satellite regression: close_session semantics (no server involved).


class TestCloseSession:
    def test_unknown_session_is_a_no_op(self):
        store = TardisStore("A")
        assert store.close_session("never-opened") is False

    def test_double_close_is_idempotent(self):
        store = TardisStore("A")
        session = store.session("s")
        assert store.close_session(session.name) is True
        assert store.close_session(session.name) is False
        assert store.close_session(session.name) is False

    def test_close_aborts_open_transactions_and_releases_pins(self):
        store = TardisStore("A")
        session = store.session("s")
        txn1 = store.begin(session=session)
        txn2 = store.begin(session=session)
        txn1.put("x", 1)
        assert _total_pins(store) > 0
        store.close_session(session.name)
        assert txn1.status == "aborted"
        assert txn2.status == "aborted"
        assert _total_pins(store) == 0
        assert store.sessions() == []
        # the aborted write never landed
        reader = store.begin()
        assert reader.get("x", default=None) is None

    def test_close_leaves_committed_work_alone(self):
        store = TardisStore("A")
        session = store.session("s")
        txn = store.begin(session=session)
        txn.put("x", 1)
        txn.commit()
        open_txn = store.begin(session=session)
        store.close_session(session.name)
        assert open_txn.status == "aborted"
        assert store.begin().get("x") == 1


# ---------------------------------------------------------------------------
# Basic wire round trips.


class TestWireBasics:
    def test_put_get_over_the_wire(self, served):
        with TardisClient(port=served.port, session="alice") as client:
            assert client.session == "alice"
            assert client.site == "net-test"
            client.put("greeting", "hello")
            assert client.get("greeting") == "hello"

    def test_txn_read_your_writes_and_missing_key(self, served):
        with TardisClient(port=served.port) as client:
            txn = client.begin()
            txn.put("k", {"nested": [1, 2]})
            assert txn.get("k") == {"nested": [1, 2]}
            with pytest.raises(KeyNotFound):
                txn.get("absent")
            assert txn.get("absent", default=7) == 7
            state = txn.commit()
            assert isinstance(state, str) and state

    def test_delete_and_context_manager_abort(self, served):
        with TardisClient(port=served.port) as client:
            client.put("k", 1)
            txn = client.begin()
            txn.delete("k")
            txn.commit()
            assert client.get("k", default="gone") == "gone"
            with pytest.raises(RuntimeError):
                with client.begin() as txn:
                    txn.put("k", 99)
                    raise RuntimeError("boom")
            assert txn.status == "aborted"
            assert client.get("k", default="gone") == "gone"

    def test_stats_and_read_only(self, served):
        with TardisClient(port=served.port) as client:
            txn = client.begin(read_only=True)
            with pytest.raises(ServerError) as exc_info:
                txn.put("x", 1)
            assert exc_info.value.code == "READ_ONLY"
            txn.commit()
            stats = client.stats()
            assert stats["connections_active"] == 1
            assert stats["store"]["site"] == "net-test"

    def test_branch_and_merge_over_the_wire(self, served):
        with TardisClient(port=served.port, session="a") as a, TardisClient(
            port=served.port, session="b"
        ) as b:
            a.put("x", 10)
            # b begins from the root (its session never saw a's commit is
            # not guaranteed -- use explicit 'any' to land on a leaf), so
            # drive a real conflict: both write the same key.
            b.put("x", 20)
            merge = a.merge()
            if merge.conflicts:
                assert [c["key"] for c in merge.conflicts] == ["x"]
                merge.put("x", max(merge.conflicts[0]["values"]))
            merge.commit()
            assert a.get("x") == 20


# ---------------------------------------------------------------------------
# Oracle equivalence: the same script over the wire and in-process must
# land in the same final state.


def _oracle_script(begin, merge_begin):
    """Run the canonical script against any (begin, merge) pair of
    callables and return the final readable key->value map."""
    for i in range(4):
        txn = begin(i)
        txn.put("key-%d" % i, i)
        txn.put("shared", i)
        txn.commit()
    merge = merge_begin()
    conflicts = merge.conflicts if hasattr(merge, "conflicts") else None
    if conflicts is None:  # in-process MergeTransaction
        keys = sorted(merge.find_conflict_writes())
        for key in keys:
            merge.put(key, max(merge.get_all(key)))
    else:
        for conflict in sorted(conflicts, key=lambda c: c["key"]):
            merge.put(conflict["key"], max(conflict["values"]))
    merge.commit()
    reader = begin(0)
    out = {}
    for i in range(4):
        out["key-%d" % i] = reader.get("key-%d" % i, default=None)
    out["shared"] = reader.get("shared", default=None)
    reader.commit()
    return out


class TestOracleEquivalence:
    def test_wire_final_state_matches_in_process(self, served):
        clients = [
            TardisClient(port=served.port, session="sess-%d" % i) for i in range(4)
        ]
        try:
            wire = _oracle_script(
                lambda i: clients[i].begin(), lambda: clients[0].merge()
            )
        finally:
            for client in clients:
                client.close()

        store = TardisStore("oracle")
        sessions = [store.session("sess-%d" % i) for i in range(4)]
        in_process = _oracle_script(
            lambda i: store.begin(session=sessions[i]),
            lambda: store.begin_merge(session=sessions[0]),
        )
        assert wire == in_process
        assert wire["shared"] == 3  # max of the conflicting writes


# ---------------------------------------------------------------------------
# Concurrency: many sockets at once, interleaved branch/merge.


class TestConcurrentClients:
    N_CLIENTS = 8
    N_INCREMENTS = 10

    def test_interleaved_clients_converge(self, served):
        errors = []

        def _client_loop(client_id):
            try:
                client = TardisClient(
                    port=served.port, session="worker-%d" % client_id
                )
                key = "counter-%d" % client_id
                for _ in range(self.N_INCREMENTS):
                    txn = client.begin()
                    value = txn.get(key, default=0)
                    txn.put(key, value + 1)
                    txn.commit()
                client.close()
            except Exception as exc:  # surfaced via the errors list
                errors.append((client_id, exc))

        threads = [
            threading.Thread(target=_client_loop, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []

        # Merge every branch down and verify nothing was lost: each
        # client's session anchor made its own increments sequential, so
        # every counter must read N_INCREMENTS after the merge.
        with TardisClient(port=served.port, session="checker") as checker:
            while True:
                merge = checker.merge()
                for conflict in merge.conflicts:
                    merge.put(conflict["key"], max(conflict["values"]))
                merge.commit()
                if len(served.server.store.dag.leaves()) == 1:
                    break
            for i in range(self.N_CLIENTS):
                assert checker.get("counter-%d" % i) == self.N_INCREMENTS


# ---------------------------------------------------------------------------
# Disconnect cleanup: a dead socket must not leak sessions, txns or pins.


class TestDisconnectCleanup:
    def test_hard_disconnect_aborts_and_unpins(self, served):
        store = served.server.store
        client = TardisClient(port=served.port, session="dropper")
        txn = client.begin()
        txn.put("doomed", 1)
        assert any(s.name == "dropper" for s in store.sessions())
        client._sock.close()  # hard drop: no BYE, mid-transaction

        assert _wait_until(
            lambda: not any(s.name == "dropper" for s in store.sessions())
        ), "session leaked after disconnect"
        assert _wait_until(lambda: _total_pins(store) == 0), "pins leaked"

        with TardisClient(port=served.port, session="observer") as observer:
            stats = observer.stats()
            assert stats["disconnect_aborts"] >= 1
            assert stats["open_txns"] == 0
            # the aborted write is invisible
            assert observer.get("doomed", default=None) is None

    def test_session_name_reusable_after_disconnect(self, served):
        client = TardisClient(port=served.port, session="phoenix")
        client._sock.close()
        assert _wait_until(
            lambda: not any(
                s.name == "phoenix" for s in served.server.store.sessions()
            )
        )
        reborn = TardisClient(port=served.port, session="phoenix")
        reborn.put("x", 1)
        reborn.close()


# ---------------------------------------------------------------------------
# Graceful shutdown: drain in-flight transactions, refuse new ones.


class TestGracefulShutdown:
    def test_drain_lets_open_txn_commit_and_refuses_new_work(self):
        handle = start_in_thread(site="drain-test", drain_timeout=10.0)
        client = TardisClient(port=handle.port, session="worker")
        txn = client.begin()
        txn.put("x", 1)

        reports = {}
        stopper = threading.Thread(
            target=lambda: reports.update(report=handle.stop())
        )
        stopper.start()
        assert _wait_until(lambda: handle.server._closing)

        # New transactions are refused while draining...
        with pytest.raises(ServerError) as exc_info:
            client.begin()
        assert exc_info.value.code == "SHUTTING_DOWN"
        # ...but the open one is allowed to finish.
        txn.commit()
        client.close()
        stopper.join(timeout=30.0)

        report = reports["report"]
        assert report["drained_in_time"] is True
        assert report["leaked_sessions"] == []
        assert report["commits"] == 1

    def test_drain_timeout_force_closes_and_still_leaks_nothing(self):
        handle = start_in_thread(site="force-test", drain_timeout=0.2)
        client = TardisClient(port=handle.port, session="straggler")
        client.begin().put("x", 1)  # left open on purpose
        report = handle.stop()
        assert report["drained_in_time"] is False
        assert report["forced_closes"] >= 1
        assert report["leaked_sessions"] == []
        assert report["disconnect_aborts"] >= 1
        assert handle.server.store.sessions() == []

    def test_new_connections_rejected_while_draining(self):
        handle = start_in_thread(site="reject-test", drain_timeout=5.0)
        client = TardisClient(port=handle.port, session="holder")
        txn = client.begin()
        stopper = threading.Thread(target=handle.stop)
        stopper.start()
        assert _wait_until(lambda: handle.server._closing)
        with pytest.raises((ServerError, OSError, Exception)):
            TardisClient(port=handle.port, session="late")
        txn.commit()
        client.close()
        stopper.join(timeout=30.0)


# ---------------------------------------------------------------------------
# Wire error paths: framing violations and protocol misuse.


class TestWireErrors:
    def _raw_exchange(self, port, payload_bytes):
        """Send raw bytes; return every frame the server answers before
        closing the connection."""
        sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
        decoder = FrameDecoder()
        frames = []
        try:
            sock.sendall(payload_bytes)
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                decoder.feed(data)
                frames.extend(decoder.frames())
        finally:
            sock.close()
        return frames

    def test_oversized_frame_is_fatal(self, served):
        frames = self._raw_exchange(served.port, HEADER.pack(MAX_FRAME + 1))
        assert frames[-1]["error"]["code"] == "FRAME_TOO_LARGE"

    def test_garbage_frame_is_fatal(self, served):
        payload = b"\x00\xffnot json"
        frames = self._raw_exchange(
            served.port, HEADER.pack(len(payload)) + payload
        )
        assert frames[-1]["error"]["code"] == "BAD_FRAME"

    def test_session_in_use(self, served):
        with TardisClient(port=served.port, session="solo"):
            with pytest.raises(ServerError) as exc_info:
                TardisClient(port=served.port, session="solo")
            assert exc_info.value.code == "SESSION_IN_USE"

    def test_version_mismatch(self, served):
        sock = socket.create_connection(("127.0.0.1", served.port), timeout=5.0)
        try:
            from repro.server.protocol import encode_frame

            sock.sendall(
                encode_frame({"id": 1, "op": "HELLO", "protocol": 99})
            )
            decoder = FrameDecoder()
            decoder.feed(sock.recv(65536))
            response = decoder.next_frame()
            assert response["error"]["code"] == "BAD_VERSION"
        finally:
            sock.close()

    def test_no_hello_unknown_txn_bad_constraint(self, served):
        sock = socket.create_connection(("127.0.0.1", served.port), timeout=5.0)
        try:
            from repro.server.protocol import encode_frame

            decoder = FrameDecoder()

            def ask(request):
                sock.sendall(encode_frame(request))
                while True:
                    frame = decoder.next_frame()
                    if frame is not None:
                        return frame
                    decoder.feed(sock.recv(65536))

            assert (
                ask({"id": 1, "op": "BEGIN"})["error"]["code"] == "NO_HELLO"
            )
            assert ask({"id": 2, "op": "HELLO"})["ok"] is True
            assert (
                ask({"id": 3, "op": "HELLO"})["error"]["code"]
                == "ALREADY_HELLO"
            )
            assert (
                ask({"id": 4, "op": "READ", "txn": 99, "key": "x"})["error"][
                    "code"
                ]
                == "UNKNOWN_TXN"
            )
            assert (
                ask({"id": 5, "op": "BEGIN", "constraint": "nope"})["error"][
                    "code"
                ]
                == "BAD_CONSTRAINT"
            )
            assert (
                ask({"id": 6, "op": "FROB"})["error"]["code"] == "UNKNOWN_OP"
            )
            assert (
                ask({"id": 7, "op": "WRITE", "txn": 1})["error"]["code"]
                == "BAD_REQUEST"
            )
        finally:
            sock.close()

    def test_commit_twice_is_txn_closed(self, served):
        with TardisClient(port=served.port) as client:
            txn = client.begin()
            txn.put("x", 1)
            txn.commit()
            with pytest.raises(ServerError) as exc_info:
                client._request("COMMIT", txn=txn._txn_id)
            assert exc_info.value.code == "UNKNOWN_TXN"


# ---------------------------------------------------------------------------
# The async client speaks the same protocol.


class TestAsyncClient:
    def test_async_round_trip(self, served):
        async def _go():
            client = await AsyncTardisClient.connect(
                port=served.port, session="aio"
            )
            try:
                async with await client.begin() as txn:
                    await txn.put("async-key", [1, 2, 3])
                assert await client.get("async-key") == [1, 2, 3]
                merge = await client.merge()
                for conflict in merge.conflicts:
                    await merge.put(conflict["key"], max(conflict["values"]))
                await merge.commit()
                stats = await client.stats()
                assert stats["commits"] >= 2
            finally:
                await client.close()

        asyncio.run(_go())


# ---------------------------------------------------------------------------
# The shard plane behind the server: a PartitionedStore with worker
# processes must be wire-indistinguishable from the flat store, and the
# server must reap its workers at shutdown even after rude disconnects.


@pytest.fixture
def served_sharded():
    handle = start_in_thread(site="net-shard", shards=4, shard_workers=2)
    yield handle
    if handle.server.report is None:
        handle.stop()


class TestShardedServing:
    def test_wire_script_matches_flat_store(self, served_sharded):
        clients = [
            TardisClient(port=served_sharded.port, session="sess-%d" % i)
            for i in range(4)
        ]
        try:
            wire = _oracle_script(
                lambda i: clients[i].begin(), lambda: clients[0].merge()
            )
        finally:
            for client in clients:
                client.close()

        store = TardisStore("oracle")
        sessions = [store.session("sess-%d" % i) for i in range(4)]
        in_process = _oracle_script(
            lambda i: store.begin(session=sessions[i]),
            lambda: store.begin_merge(session=sessions[0]),
        )
        assert wire == in_process

        report = served_sharded.stop()
        assert report["leaked_sessions"] == []
        assert report["leaked_workers"] == 0

    def test_read_many_over_the_wire(self, served_sharded):
        with TardisClient(port=served_sharded.port, session="batch") as client:
            txn = client.begin()
            for i in range(20):
                txn.put("key-%03d" % i, i)
            txn.commit()
            keys = ["key-%03d" % i for i in range(20)] + ["missing"]
            values = client.get_many(keys, default="MISS")
            assert values == list(range(20)) + ["MISS"]
            txn = client.begin(read_only=True)
            with pytest.raises(KeyNotFound):
                txn.get_many(["missing"])
            txn.abort()
            stats = client.stats()
            assert stats["store"]["shard_workers"] == 2
            assert stats["store"]["shard_workers_alive"] == 2

    def test_hard_disconnect_leaks_nothing_with_shards(self, served_sharded):
        store = served_sharded.server.store
        client = TardisClient(port=served_sharded.port, session="dropper")
        txn = client.begin()
        txn.put("doomed", 1)
        client._sock.close()  # hard drop: no BYE, mid-transaction

        assert _wait_until(
            lambda: not any(s.name == "dropper" for s in store.sessions())
        ), "session leaked after disconnect"
        with TardisClient(port=served_sharded.port, session="observer") as obs:
            assert obs.get("doomed", default=None) is None

        report = served_sharded.stop()
        assert report["leaked_sessions"] == []
        assert report["leaked_workers"] == 0
        assert report["exit_code"] if "exit_code" in report else True

    def test_dead_worker_surfaces_as_typed_wire_error(self, served_sharded):
        with TardisClient(port=served_sharded.port, session="chaos") as client:
            txn = client.begin()
            for i in range(16):
                txn.put("key-%03d" % i, i)
            txn.commit()
            served_sharded.server.store.versions.kill_worker(1)
            with pytest.raises(ShardUnavailableError):
                client.get_many(["key-%03d" % i for i in range(16)])
