"""Hypothesis stateful testing of the whole store.

A rule-based machine drives an arbitrary interleaving of the public
API — begins, reads, writes, commits, aborts, merges, ceilings, GC,
checkpoints — and checks the structural invariants of the State DAG
plus a visibility oracle after every step. This is the widest net in
the suite: any sequence of operations hypothesis can find must keep the
store consistent.
"""

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro import TardisStore
from repro.errors import (
    KeyNotFound,
    MultipleValuesError,
    TransactionAborted,
    TransactionClosed,
)

KEYS = ["alpha", "beta", "gamma", "delta"]
SESSIONS = ["s0", "s1", "s2"]


class StoreMachine(RuleBasedStateMachine):
    open_txns = Bundle("open_txns")

    @initialize()
    def setup(self):
        self.store = TardisStore("A")
        self.value_counter = 0
        self.merges_open = 0

    # -- rules ---------------------------------------------------------------

    @rule(target=open_txns, session=st.sampled_from(SESSIONS))
    def begin(self, session):
        return self.store.begin(session=self.store.session(session))

    @rule(txn=open_txns, key=st.sampled_from(KEYS))
    def read(self, txn, key):
        if txn.status != "active":
            return
        value = txn.get(key, default=None)
        if value is not None:
            # every visible value was produced by some put
            assert isinstance(value, int)

    @rule(txn=open_txns, key=st.sampled_from(KEYS))
    def write(self, txn, key):
        if txn.status != "active":
            return
        self.value_counter += 1
        txn.put(key, self.value_counter)

    @rule(txn=open_txns, key=st.sampled_from(KEYS))
    def delete(self, txn, key):
        if txn.status != "active":
            return
        txn.delete(key)

    @rule(txn=open_txns)
    def commit(self, txn):
        if txn.status != "active":
            return
        try:
            commit_id = txn.commit()
        except TransactionAborted:
            return
        assert txn.status == "committed"
        assert commit_id in self.store.dag

    @rule(txn=open_txns)
    def abort(self, txn):
        if txn.status != "active":
            return
        txn.abort()
        assert txn.status == "aborted"

    @rule(session=st.sampled_from(SESSIONS))
    def merge_all(self, session):
        store = self.store
        if len(store.dag.leaves()) < 2:
            return
        merge = store.begin_merge(session=store.session(session))
        for key in merge.find_conflict_writes():
            try:
                candidates = merge.get_all(key)
            except MultipleValuesError:  # pragma: no cover
                candidates = []
            if candidates:
                merge.put(key, max(candidates))
        merge.commit()

    @rule(session=st.sampled_from(SESSIONS))
    def place_ceiling(self, session):
        self.store.session(session).place_ceiling()

    @rule()
    def collect(self):
        self.store.collect_garbage()

    # -- invariants -------------------------------------------------------------

    @invariant()
    def dag_invariants_hold(self):
        if hasattr(self, "store"):
            self.store.dag.check_invariants()

    @invariant()
    def version_lists_sorted_and_resolvable(self):
        if not hasattr(self, "store"):
            return
        for key in KEYS:
            versions = self.store.versions.versions_of(key)
            assert versions == sorted(versions, reverse=True), key
            for sid in versions:
                self.store.dag.resolve(sid)  # must not raise

    @invariant()
    def leaves_always_readable(self):
        """Every leaf can serve a read-only transaction."""
        if not hasattr(self, "store"):
            return
        for leaf in self.store.dag.leaves():
            for key in KEYS:
                self.store.versions.read_visible(key, leaf, self.store.dag)


TestStoreMachine = pytest.mark.filterwarnings("ignore")(
    StoreMachine.TestCase
)
TestStoreMachine.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)
