"""Unit and property tests for the skip list (storage substrate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.skiplist import SkipList


class TestSkipListBasics:
    def test_empty(self):
        sl = SkipList(seed=1)
        assert len(sl) == 0
        assert not sl
        assert list(sl) == []
        assert 5 not in sl
        assert sl.get(5) is None
        assert sl.get(5, "d") == "d"

    def test_insert_and_get(self):
        sl = SkipList(seed=1)
        sl.insert(3, "c")
        sl.insert(1, "a")
        sl.insert(2, "b")
        assert len(sl) == 3
        assert sl.get(1) == "a"
        assert sl.get(2) == "b"
        assert sl.get(3) == "c"

    def test_sorted_ascending(self):
        sl = SkipList(seed=1)
        for k in [5, 3, 9, 1, 7]:
            sl.insert(k, k * 10)
        assert list(sl.keys()) == [1, 3, 5, 7, 9]
        assert list(sl.values()) == [10, 30, 50, 70, 90]

    def test_sorted_descending(self):
        sl = SkipList(reverse=True, seed=1)
        for k in [5, 3, 9, 1, 7]:
            sl.insert(k, None)
        assert list(sl.keys()) == [9, 7, 5, 3, 1]

    def test_duplicate_insert_replaces(self):
        sl = SkipList(seed=1)
        sl.insert(1, "a")
        sl.insert(1, "b")
        assert len(sl) == 1
        assert sl.get(1) == "b"

    def test_remove(self):
        sl = SkipList(seed=1)
        for k in range(10):
            sl.insert(k, k)
        assert sl.remove(5)
        assert not sl.remove(5)
        assert 5 not in sl
        assert len(sl) == 9
        assert list(sl.keys()) == [0, 1, 2, 3, 4, 6, 7, 8, 9]

    def test_remove_all(self):
        sl = SkipList(seed=3)
        for k in range(20):
            sl.insert(k, k)
        for k in range(20):
            assert sl.remove(k)
        assert len(sl) == 0
        assert list(sl) == []

    def test_first(self):
        sl = SkipList(seed=1)
        with pytest.raises(KeyError):
            sl.first()
        sl.insert(4, "d")
        sl.insert(2, "b")
        assert sl.first() == (2, "b")
        rl = SkipList(reverse=True, seed=1)
        rl.insert(4, "d")
        rl.insert(2, "b")
        assert rl.first() == (4, "d")

    def test_items_from(self):
        sl = SkipList(seed=1)
        for k in [1, 3, 5, 7]:
            sl.insert(k, k)
        assert [k for k, _ in sl.items_from(3)] == [3, 5, 7]
        assert [k for k, _ in sl.items_from(4)] == [5, 7]
        assert [k for k, _ in sl.items_from(8)] == []

    def test_tuple_keys(self):
        sl = SkipList(reverse=True, seed=1)
        sl.insert((1, "A"), None)
        sl.insert((2, "A"), None)
        sl.insert((1, "B"), None)
        assert list(sl.keys()) == [(2, "A"), (1, "B"), (1, "A")]


class TestSkipListProperties:
    @given(st.lists(st.integers(-1000, 1000)))
    @settings(max_examples=200)
    def test_matches_sorted_set(self, keys):
        sl = SkipList(seed=7)
        for k in keys:
            sl.insert(k, -k)
        expected = sorted(set(keys))
        assert list(sl.keys()) == expected
        assert len(sl) == len(expected)
        for k in expected:
            assert sl.get(k) == -k

    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 50)),
            max_size=200,
        )
    )
    @settings(max_examples=200)
    def test_mixed_ops_match_dict(self, ops):
        sl = SkipList(reverse=True, seed=11)
        model = {}
        for op, k in ops:
            if op == "ins":
                sl.insert(k, op)
                model[k] = op
            else:
                assert sl.remove(k) == (k in model)
                model.pop(k, None)
        assert list(sl.keys()) == sorted(model, reverse=True)

    def test_large_randomized(self):
        rng = random.Random(42)
        sl = SkipList(seed=42)
        model = {}
        for _ in range(5000):
            k = rng.randrange(500)
            if rng.random() < 0.7:
                sl.insert(k, k)
                model[k] = k
            else:
                assert sl.remove(k) == (k in model)
                model.pop(k, None)
        assert list(sl.keys()) == sorted(model)
