"""Coverage for smaller surfaces: errors, reprs, edge paths, cross-site apps."""

import pytest

from repro import (
    AncestorConstraint,
    ForkPath,
    ForkPoint,
    KBranchingConstraint,
    NoBranchingConstraint,
    Or,
    ROOT_ID,
    SerializabilityConstraint,
    StateId,
    TardisStore,
)
from repro.apps.retwis import RetwisApp, retwis_merge_resolver
from repro.errors import (
    DeadlockError,
    GarbageCollectedError,
    KeyNotFound,
    MultipleValuesError,
    TardisError,
    TransactionAborted,
)
from repro.replication import Cluster
from repro.storage.wal import WriteAheadLog


class TestErrors:
    def test_hierarchy(self):
        for exc in (
            TransactionAborted("x"),
            KeyNotFound("k"),
            GarbageCollectedError(ROOT_ID),
            DeadlockError(1, cycle=[1, 2]),
            MultipleValuesError("k", [(ROOT_ID, 1)]),
        ):
            assert isinstance(exc, TardisError)

    def test_attributes(self):
        exc = MultipleValuesError("key", [(ROOT_ID, 1), (ROOT_ID, 2)])
        assert exc.key == "key"
        assert len(exc.candidates) == 2
        assert DeadlockError(7).txn_id == 7
        assert DeadlockError(7).cycle == []
        assert KeyNotFound("k").key == "k"
        assert GarbageCollectedError(ROOT_ID).state_id == ROOT_ID
        assert TransactionAborted("why").reason == "why"


class TestReprsAndHelpers:
    def test_state_id_repr(self):
        assert repr(ROOT_ID) == "s0"
        assert repr(StateId(3, "A")) == "s3@A"

    def test_fork_path_repr_and_choices(self):
        path = ForkPath([ForkPoint(StateId(1, "A"), 0), ForkPoint(StateId(2, "A"), 1)])
        assert "(s1@A,0)" in repr(path)
        choices = path.branch_choices()
        assert choices[0][0] == StateId(1, "A")
        assert [c[1] for c in choices] == [0, 1]

    def test_store_and_session_repr(self):
        store = TardisStore("A")
        sess = store.session("me")
        assert "site=A" in repr(store)
        assert "me" in repr(sess)

    def test_txn_reprs(self):
        store = TardisStore("A")
        txn = store.begin()
        assert "Transaction" in repr(txn)
        txn.abort()
        store.put("x", 1)
        store.put("y", 1, session=store.session("b"))
        merge = store.begin_merge()
        assert "MergeTransaction" in repr(merge)
        merge.abort()

    def test_constraint_or_capabilities(self):
        combo = Or(AncestorConstraint(), SerializabilityConstraint())
        assert combo.can_begin  # Ancestor side
        assert combo.can_end    # Serializability side
        assert "|" in combo.name

    def test_kbranching_as_begin_constraint(self):
        store = TardisStore("A")
        store.put("x", 1)
        txn = store.begin(KBranchingConstraint(3))
        assert txn.get("x") == 1
        txn.commit()

    def test_no_branching_as_begin_constraint(self):
        store = TardisStore("A")
        store.put("x", 1)
        txn = store.begin(NoBranchingConstraint())
        assert txn.read_state.is_leaf
        txn.commit()


class TestVersionsEdges:
    def test_items_at_snapshot(self):
        store = TardisStore("A")
        with store.begin() as t:
            t.put("a", 1)
            t.put("b", 2)
        mid = store.session("s").last_commit_id
        mid_state = store.dag.leaves()[0]
        with store.begin() as t:
            t.put("a", 10)
        snapshot = dict(store.versions.items_at(mid_state, store.dag))
        assert snapshot == {"a": 1, "b": 2}

    def test_read_candidates_superseded_dropped(self):
        store = TardisStore("A")
        store.put("x", 1)
        s1 = store.dag.leaves()[0]
        store.put("x", 2)
        s2 = store.dag.leaves()[0]
        # s1 is an ancestor of s2: only s2's version is maximal.
        candidates = store.versions.read_candidates("x", [s1, s2], store.dag)
        assert len(candidates) == 1
        assert candidates[0][1] == 2


class TestWalEdges:
    def test_compact_with_id_key(self, tmp_path):
        path = str(tmp_path / "w.log")
        with WriteAheadLog(path) as wal:
            for i in (3, 1, 2):
                wal.append_commit((i, "A"), (), ())
        kept = WriteAheadLog.compact(
            path, keep_from_state=(2, "A"), id_key=lambda sid: sid[0]
        )
        assert kept == 2


class TestClusterEdges:
    def test_converged_false_when_diverged(self):
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        us.put("x", 1)
        cluster.run(until=50)
        t = eu.begin(session=eu.session("w"))
        t.put("x", t.get("x") + 1)
        t.commit()
        t2 = us.begin(session=us.session("w"))
        t2.put("x", t2.get("x") + 5)
        t2.commit()
        cluster.run(until=200)
        assert not cluster.converged("x")  # two branches everywhere

    def test_geo_latency_pairs_applied(self):
        cluster = Cluster(n_sites=3)
        assert cluster.network.latency("us", "eu") == 50.0
        assert cluster.network.latency("eu", "asia") == 125.0

    def test_state_counts(self):
        cluster = Cluster(n_sites=2)
        counts = cluster.state_counts()
        assert counts == {"us": 1, "eu": 1}


class TestRetwisAcrossSites:
    def test_posts_replicate_and_merge_across_sites(self):
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        app_us = RetwisApp(cluster.stores["us"])
        app_us.create_account("alice")
        app_us.create_account("carla")
        app_us.follow("carla", "alice")
        cluster.run(until=50)

        app_eu = RetwisApp(cluster.stores["eu"])
        # Concurrent posts at both sites.
        app_us.post("alice", "from us")
        app_eu.post("alice", "from eu")
        cluster.run(until=200)

        resolved = app_us.merge_branches()
        assert resolved >= 1
        cluster.run(until=500)
        timeline_us = [c for _a, c in app_us.read_own_timeline("carla")]
        assert set(timeline_us) == {"from us", "from eu"}
        # The merge replicated; eu serves the merged timeline too.
        timeline_eu = [
            c for _a, c in RetwisApp(cluster.stores["eu"]).read_own_timeline("carla")
        ]
        assert set(timeline_eu) == {"from us", "from eu"}
