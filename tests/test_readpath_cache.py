"""Read-path caching: equivalence with the cold paths and invalidation.

The generation-stamped caches (docs/internals.md §10) are pure
memoization — a cached store must be observationally identical to one
built with ``read_cache=False``. These tests drive both arms through
identical histories (including forks, merges, GC, and record promotion)
and assert bit-identical reads, begin states, and conflict-write sets,
then pin down each invalidation edge individually.
"""

import random

import pytest

from repro import TardisStore
from repro.core.constraints import AncestorConstraint
from repro.errors import TransactionAborted


def fork_pair(store, a, b, n_rounds=1):
    """Commit read-write conflicting pairs so branch-on-conflict forks.

    Both transactions read *and* write ``base`` so the serializability
    ripple cannot order them — each round deepens both branches.
    """
    for i in range(n_rounds):
        t1 = store.begin(session=a)
        t2 = store.begin(session=b)
        t1.put("base", t1.get("base", default=0) + 1)
        t1.put("a%d" % i, i)
        t2.put("base", t2.get("base", default=0) + 10)
        t2.put("b%d" % i, i)
        t1.commit()
        t2.commit()


class TestCachedUncachedEquivalence:
    """Fuzz: one deterministic schedule, two stores, identical results."""

    KEYS = ["base", "k0", "k1", "k2", "k3", "k4"]

    def drive(self, store, rng):
        """Replay a randomized history; return every observable."""
        sessions = [store.session("s%d" % i) for i in range(3)]
        observed = []
        for step in range(120):
            op = rng.random()
            sess = sessions[rng.randrange(len(sessions))]
            if op < 0.20:
                # Two overlapping transactions read-write conflicting on
                # ``base``: branch-on-conflict must fork.
                other = sessions[(sessions.index(sess) + 1) % len(sessions)]
                t1 = store.begin(session=sess)
                t2 = store.begin(session=other)
                t1.put("base", t1.get("base", default=0) + 1)
                t2.put("base", t2.get("base", default=0) + 10)
                observed.append(("pair", t1.commit(), t2.commit()))
            elif op < 0.70:
                txn = store.begin(session=sess)
                observed.append(("begin", txn.read_state.id))
                for _ in range(rng.randrange(1, 4)):
                    key = self.KEYS[rng.randrange(len(self.KEYS))]
                    if rng.random() < 0.5 or key == "base":
                        observed.append(("r", key, txn.get(key, default=None)))
                    else:
                        txn.put(key, (step, key))
                # Conflicting read-write pairs on ``base`` force forks.
                txn.put("base", txn.get("base", default=0) + 1)
                try:
                    observed.append(("commit", txn.commit()))
                except TransactionAborted:
                    observed.append(("abort",))
            elif op < 0.85 and len(store.dag.leaves()) > 1:
                merge = store.begin_merge(session=sess)
                conflicts = merge.find_conflict_writes()
                observed.append(("conflicts", tuple(conflicts)))
                for key in conflicts:
                    values = merge.get_all(key)
                    merge.put(key, max(values, key=repr))
                observed.append(("merge", merge.commit()))
            else:
                for s in sessions:
                    s.place_ceiling()
                stats = store.collect_garbage(
                    flush_promotions=rng.random() < 0.3
                )
                observed.append(
                    ("gc", stats.states_removed, stats.records_promoted)
                )
        # Final state: every leaf and every visible value per leaf.
        for leaf in sorted(store.dag.leaves(), key=lambda s: s.id):
            view = tuple(
                store.versions.read_visible(key, leaf, store.dag)
                for key in self.KEYS
            )
            observed.append(("leaf", leaf.id, view))
        return observed

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    def test_fuzz_bit_identical(self, seed):
        cached = TardisStore("site")
        cold = TardisStore("site", read_cache=False)
        got_cached = self.drive(cached, random.Random(seed))
        got_cold = self.drive(cold, random.Random(seed))
        assert got_cached == got_cold
        # The schedule must actually exercise the caches for the
        # equivalence to mean anything.
        stats = cached.cache_stats()
        assert stats["begin_hits"] + stats["vis_hits"] > 0
        assert cached.metrics.forks > 0

    def test_conflict_write_sets_match(self):
        """WriteSetIndex vs the legacy states_between walk, repeatedly."""
        cached = TardisStore("site")
        cold = TardisStore("site", read_cache=False)
        for store in (cached, cold):
            a, b = store.session("a"), store.session("b")
            with store.begin(session=a) as t:
                t.put("base", 0)
            fork_pair(store, a, b, n_rounds=3)
        m1 = cached.begin_merge(session=cached.session("a"))
        m2 = cold.begin_merge(session=cold.session("a"))
        first = m1.find_conflict_writes()
        assert first == m2.find_conflict_writes()
        assert "base" in first
        # Second query is answered from the memo, identically.
        assert m1.find_conflict_writes() == first
        assert cached.cache_stats()["writeset_hits"] >= 2
        m1.abort()
        m2.abort()
        # A commit extending one branch tops the memo up incrementally:
        # the next query re-walks nothing.
        t = cached.begin(session=cached.session("a"))
        t.put("extra", 1)
        t.commit()
        misses_before = cached.cache_stats()["writeset_misses"]
        m3 = cached.begin_merge(session=cached.session("a"))
        m4 = cold.begin_merge(session=cold.session("a"))
        t2 = cold.begin(session=cold.session("a"))
        t2.put("extra", 1)
        t2.commit()
        m4.abort()
        m4 = cold.begin_merge(session=cold.session("a"))
        assert m3.find_conflict_writes() == m4.find_conflict_writes()
        assert cached.cache_stats()["writeset_misses"] == misses_before
        m3.abort()
        m4.abort()


class TestGenerationBumps:
    """Every mutation class must move the right generation counter."""

    def test_commit_bumps_generation(self):
        store = TardisStore("g")
        before = store.dag.generation
        with store.begin() as t:
            t.put("x", 1)
        assert store.dag.generation > before
        # Plain commits are append-only: no destructive move.
        assert store.dag.destructive_gen < store.dag.generation

    def test_splice_out_marks_destructive(self):
        store = TardisStore("g")
        sess = store.session("a")
        for i in range(5):
            t = store.begin(session=sess)
            t.put("x", i)
            t.commit()
        sess.place_ceiling()
        destructive_before = store.dag.destructive_gen
        stats = store.collect_garbage()
        assert stats.states_removed > 0
        assert store.dag.destructive_gen > destructive_before

    def test_record_promotion_marks_destructive(self):
        # promote_and_prune rewrites version lists even when invoked
        # directly, so it must flag the move itself.
        store = TardisStore("g")
        sess = store.session("a")
        for i in range(4):
            t = store.begin(session=sess)
            t.put("x", i)
            t.commit()
        sess.place_ceiling()
        store.collect_garbage()
        assert store.dag.destructive_gen == store.dag.generation

    def test_mark_pass_alone_bumps_generation(self):
        # Marking changes find_read_state results without reshaping the
        # DAG: generation must move (begin caches revalidate), but the
        # move need not be destructive when nothing was spliced.
        store = TardisStore("g")
        a, b = store.session("a"), store.session("b")
        with store.begin(session=a) as t:
            t.put("base", 0)
        fork_pair(store, a, b)
        reader = store.begin(session=a)  # pins its read state
        a.place_ceiling()
        b.place_ceiling()
        before = store.dag.generation
        stats = store.collect_garbage()
        assert stats.marked > 0
        assert store.dag.generation > before
        reader.abort()

    def test_group_commit_flush_keeps_generation_moving(self, tmp_path):
        store = TardisStore(
            "g",
            wal_path=str(tmp_path / "wal.log"),
            wal_sync=False,
            group_commit=3,
        )
        generations = []
        for i in range(7):
            with store.begin() as t:
                t.put("k%d" % i, i)
            generations.append(store.dag.generation)
        # Strictly monotone across the batch boundaries too.
        assert generations == sorted(set(generations))
        store.close()


class TestBeginCache:
    def test_hit_after_abort(self):
        store = TardisStore("b")
        sess = store.session("a")
        with store.begin(session=sess) as t:
            t.put("x", 1)
        t1 = store.begin(session=sess)
        state_id = t1.read_state.id
        t1.abort()
        hits_before = store.metrics.begin_cache_hits
        t2 = store.begin(session=sess)
        assert t2.read_state.id == state_id
        assert store.metrics.begin_cache_hits == hits_before + 1
        t2.abort()

    def test_miss_after_new_leaf(self):
        store = TardisStore("b")
        sess = store.session("a")
        with store.begin(session=sess) as t:
            t.put("x", 1)
        store.begin(session=sess).abort()  # populate the cache
        with store.begin(session=sess) as t:
            t.put("x", 2)  # new leaf supersedes the cached one
        misses_before = store.metrics.begin_cache_misses
        t = store.begin(session=sess)
        assert t.read_state.id == sess.last_commit_id
        assert store.metrics.begin_cache_misses == misses_before + 1
        t.abort()

    def test_marked_leaf_never_served_from_cache(self):
        # GC marking must invalidate cached begin states even though the
        # DAG's shape is untouched.
        store = TardisStore("b")
        a, b = store.session("a"), store.session("b")
        with store.begin(session=a) as t:
            t.put("base", 0)
        fork_pair(store, a, b)
        store.begin(session=a).abort()  # cache a's branch leaf
        # a commits again, then promises never to read below it: the
        # cached leaf becomes marked.
        with store.begin(session=a) as t:
            t.put("base", t.get("base") + 1)
        a.place_ceiling()
        b.place_ceiling()
        store.collect_garbage()
        t = store.begin(session=a)
        assert not t.read_state.marked
        t.abort()

    def test_disabled_store_counts_nothing(self):
        store = TardisStore("b", read_cache=False)
        with store.begin() as t:
            t.put("x", 1)
        store.begin().abort()
        store.begin().abort()
        assert store.metrics.begin_cache_hits == 0
        assert store.metrics.begin_cache_misses == 0


class TestVisibilityCache:
    def test_hits_on_stable_branch(self):
        store = TardisStore("v")
        with store.begin() as t:
            t.put("x", "value")
        for _ in range(3):
            t = store.begin()
            assert t.get("x") == "value"
            t.abort()
        info = store.versions.cache_info()
        assert info["hits"] >= 2
        assert info["misses"] >= 1

    def test_write_to_key_forces_rewalk(self):
        store = TardisStore("v")
        with store.begin() as t:
            t.put("x", 1)
        store.begin().abort() and None  # warm
        t = store.begin()
        t.get("x")
        t.abort()
        with store.begin() as t:
            t.put("x", 2)
        t = store.begin()
        # The cached entry is for an older read state and the key has a
        # newer version: the walk must run again and see the new value.
        assert t.get("x") == 2
        t.abort()

    def test_destructive_gc_invalidates(self):
        store = TardisStore("v")
        sess = store.session("a")
        for i in range(5):
            t = store.begin(session=sess)
            t.put("x", i)
            t.commit()
        t = store.begin(session=sess)
        assert t.get("x") == 4
        t.abort()
        assert store.versions.cache_info()["size"] > 0
        sess.place_ceiling()
        store.collect_garbage()
        t = store.begin(session=sess)
        assert t.get("x") == 4  # correct after promotion rewrote versions
        t.abort()
        assert store.versions.cache_info()["invalidations"] > 0


class TestSessionAutoNaming:
    def test_unique_names_and_registration(self):
        store = TardisStore("s")
        s1 = store.session()
        s2 = store.session()
        assert s1.name != s2.name
        assert store.session(s1.name) is s1

    def test_concurrent_auto_naming(self):
        import threading

        store = TardisStore("s")
        out = []

        def grab():
            for _ in range(50):
                out.append(store.session())

        threads = [threading.Thread(target=grab) for _ in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        names = [s.name for s in out]
        assert len(set(names)) == len(names) == 200
