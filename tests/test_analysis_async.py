"""Tests for the concurrency/protocol rule families of ``tardis check``:
``async-discipline`` fixtures per violation class, interprocedural
``lock-order`` cycles (positive and negative), ``wire-contract`` drift
against a deliberately desynced fixture protocol, suppression handling,
and the ``--only`` / ``--exclude`` / ``--baseline`` CLI modes."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import check_repo, load_baseline, run_check
from repro.analysis.engine import Project, SourceModule, TextFile
from repro.analysis.rules.async_discipline import AsyncDisciplineRule
from repro.analysis.rules.hygiene import BareExceptRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.wire_contract import WireContractRule
from repro.tools.cli import main as cli_main


def _module(source, relpath="src/repro/fixture.py"):
    return SourceModule(Path(relpath), relpath, textwrap.dedent(source))


def _findings(rule, source, relpath="src/repro/fixture.py"):
    return rule.check_module(_module(source, relpath))


def _project(sources, doc_text=None):
    """A fixture Project from {relpath: source}, plus an optional doc."""
    project = Project(root=Path("."))
    for relpath, source in sources.items():
        project.modules.append(_module(source, relpath))
    if doc_text is not None:
        project.docs.append(
            TextFile(Path("docs/internals.md"), "docs/internals.md", doc_text)
        )
    return project


# ---------------------------------------------------------------------------
# async-discipline
# ---------------------------------------------------------------------------


class TestAsyncBlockingCalls:
    def test_time_sleep_in_coroutine(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            import time

            async def handler():
                time.sleep(1)
            """,
        )
        assert finding.rule == "async-discipline"
        assert "time.sleep" in finding.message

    def test_asyncio_sleep_is_fine(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """,
        )

    def test_socket_call_in_coroutine(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            import socket

            async def handler():
                socket.create_connection(("h", 1))
            """,
        )
        assert "socket.create_connection" in finding.message

    def test_open_in_coroutine(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            async def handler(path):
                with open(path) as handle:
                    return handle.read()
            """,
        )
        assert "open()" in finding.message

    def test_open_in_nested_sync_def_is_fine(self):
        # The run_server pattern: a nested sync def shipped to an executor.
        assert not _findings(
            AsyncDisciplineRule(),
            """
            async def handler(loop, path):
                def write():
                    with open(path, "w") as handle:
                        handle.write("x")
                await loop.run_in_executor(None, write)
            """,
        )

    def test_sync_function_may_block(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            import time

            def worker():
                time.sleep(1)
            """,
        )


class TestAsyncStoreCalls:
    def test_direct_store_call_in_coroutine(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            class Server:
                async def handle(self):
                    return self.store.begin()
            """,
        )
        assert "self.store.begin" in finding.message
        assert "executor" in finding.message

    def test_store_method_passed_to_executor_is_fine(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            class Server:
                async def handle(self, loop):
                    return await loop.run_in_executor(None, self.store.begin)
            """,
        )


class TestAwaitUnderLock:
    GUARDED = """
        import asyncio
        import threading

        class Server:
            _GUARDED_BY = {"_conns": "self._lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._conns = {}

            async def bad(self):
                with self._lock:
                    await asyncio.sleep(0)

            async def good(self):
                with self._lock:
                    n = len(self._conns)
                await asyncio.sleep(0)
                return n
        """

    def test_await_inside_guarded_lock(self):
        (finding,) = _findings(AsyncDisciplineRule(), self.GUARDED)
        assert "await while holding threading lock self._lock" in finding.message
        assert finding.line == 14

    def test_lock_known_only_from_init(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            import asyncio
            import threading

            class Server:
                def __init__(self):
                    self._mu = threading.RLock()

                async def bad(self):
                    with self._mu:
                        await asyncio.sleep(0)
            """,
        )
        assert "self._mu" in finding.message

    def test_non_lock_context_manager_is_fine(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            import asyncio

            class Server:
                async def fine(self):
                    with self._session:
                        await asyncio.sleep(0)
            """,
        )


class TestDroppedCoroutines:
    def test_unawaited_method_coroutine(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            class Server:
                async def flush(self):
                    pass

                async def handle(self):
                    self.flush()
            """,
        )
        assert "never awaited" in finding.message

    def test_unawaited_module_coroutine_from_sync_code(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            async def pump():
                pass

            def kick():
                pump()
            """,
        )
        assert "pump" in finding.message

    def test_awaited_coroutine_is_fine(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            class Server:
                async def flush(self):
                    pass

                async def handle(self):
                    await self.flush()
            """,
        )

    def test_fire_and_forget_create_task(self):
        (finding,) = _findings(
            AsyncDisciplineRule(),
            """
            import asyncio

            async def handle(coro):
                asyncio.create_task(coro)
            """,
        )
        assert "fire-and-forget" in finding.message

    def test_retained_task_is_fine(self):
        assert not _findings(
            AsyncDisciplineRule(),
            """
            import asyncio

            class Server:
                async def start(self, coro):
                    self._task = asyncio.create_task(coro)
            """,
        )

    def test_suppression_applies(self):
        module = _module(
            """
            import time

            async def handler():
                time.sleep(1)  # tardis: ignore[async-discipline]
            """
        )
        project = Project(root=Path("."), modules=[module])
        report = run_check(project, [AsyncDisciplineRule()])
        assert report.findings == []
        assert report.suppressed == 1


# ---------------------------------------------------------------------------
# lock-order
# ---------------------------------------------------------------------------


def _order_findings(source, relpath="src/repro/fixture.py"):
    project = Project(root=Path("."), modules=[_module(source, relpath)])
    return LockOrderRule().check_project(project)


class TestLockOrderDirect:
    def test_inverted_nesting_is_a_cycle(self):
        (finding,) = _order_findings(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def ab(self):
                    with self._a:
                        with self._b:
                            pass

                def ba(self):
                    with self._b:
                        with self._a:
                            pass
            """
        )
        assert finding.rule == "lock-order"
        assert "cycle" in finding.message
        assert "Pair._a" in finding.message and "Pair._b" in finding.message

    def test_consistent_order_is_fine(self):
        assert not _order_findings(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._a:
                        with self._b:
                            pass
            """
        )

    def test_lock_reacquisition_is_self_deadlock(self):
        (finding,) = _order_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert "self-deadlock" in finding.message

    def test_rlock_reacquisition_is_fine(self):
        assert not _order_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )


class TestLockOrderInterprocedural:
    def test_cycle_through_method_call(self):
        findings = _order_findings(
            """
            import threading

            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        self.grab_b()

                def grab_b(self):
                    with self._b:
                        pass

                def two(self):
                    with self._b:
                        self.grab_a()

                def grab_a(self):
                    with self._a:
                        pass
            """
        )
        assert len(findings) == 1
        assert "Pair._a" in findings[0].message

    def test_self_deadlock_through_method_call(self):
        (finding,) = _order_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )
        assert "self-deadlock" in finding.message

    def test_call_without_lock_held_is_fine(self):
        assert not _order_findings(
            """
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    self.inner()

                def inner(self):
                    with self._lock:
                        pass
            """
        )

    def test_cross_class_cycle_via_attribute_type(self):
        findings = _order_findings(
            """
            import threading

            class Inner:
                def __init__(self, owner):
                    self._b = threading.Lock()
                    self.owner = owner

                def grab(self):
                    with self._b:
                        pass

                def call_back(self):
                    with self._b:
                        self.owner.touch()

            class Outer:
                def __init__(self):
                    self._a = threading.Lock()
                    self.inner = Inner(self)

                def touch(self):
                    with self._a:
                        pass

                def descend(self):
                    with self._a:
                        self.inner.grab()
            """
        )
        # Outer._a -> Inner._b (descend) closes against Inner._b ->
        # Outer._a (call_back: owner's type is not inferable, so the
        # reverse edge must come from somewhere the rule *can* see).
        # owner is a constructor argument, not a ClassName(...) call, so
        # only the Outer._a -> Inner._b edge exists: acyclic.
        assert findings == []

    def test_cross_class_cycle_when_both_edges_resolvable(self):
        findings = _order_findings(
            """
            import threading

            class Inner:
                def __init__(self):
                    self._b = threading.Lock()
                    self.peer = Outer()

                def grab(self):
                    with self._b:
                        pass

                def call_back(self):
                    with self._b:
                        self.peer.touch()

            class Outer:
                def __init__(self):
                    self._a = threading.Lock()
                    self.inner = Inner()

                def touch(self):
                    with self._a:
                        pass

                def descend(self):
                    with self._a:
                        self.inner.grab()
            """
        )
        assert len(findings) == 1
        assert "Inner._b" in findings[0].message
        assert "Outer._a" in findings[0].message

    def test_guarded_by_only_lock_participates(self):
        # Lock declared via _GUARDED_BY spec (external ctor): with-sites
        # on it still produce graph nodes.
        (finding,) = _order_findings(
            """
            import threading

            class Box:
                _GUARDED_BY = {"_items": "self._lock"}

                def __init__(self):
                    self._lock = threading.Lock()
                    self._aux = threading.Lock()
                    self._items = {}

                def one(self):
                    with self._lock:
                        with self._aux:
                            pass

                def two(self):
                    with self._aux:
                        with self._lock:
                            pass
            """
        )
        assert "Box._aux" in finding.message and "Box._lock" in finding.message


# ---------------------------------------------------------------------------
# wire-contract
# ---------------------------------------------------------------------------


PROTOCOL_SRC = """
    OPS = frozenset({"HELLO", "PING"})

    ERROR_CODES = {
        "BAD_REQUEST": "missing field",
        "UNKNOWN_OP": "no such verb",
    }
    """

SERVER_SRC = """
    class _RequestError(Exception):
        def __init__(self, code, message=""):
            self.code = code
            self.message = message


    class Server:
        def _op_hello(self, request):
            if "bad" in request:
                raise _RequestError("BAD_REQUEST", "nope")
            return {}

        def _op_ping(self, request):
            return {}

        def dispatch(self, op):
            if op not in ("HELLO", "PING"):
                return error_response(1, "UNKNOWN_OP")
    """

CLIENT_SRC = """
    class Client:
        def hello(self):
            return self._request("HELLO")

        def ping(self):
            return self._request("PING")
    """

AIO_SRC = """
    class AsyncClient:
        async def hello(self):
            return await self._request("HELLO")

        async def ping(self):
            return await self._request("PING")
    """

DOC_TEXT = """\
## 12. Wire protocol

| op | request | response |
|---|---|---|
| `HELLO` | — | — |
| `PING` | — | — |

| code | meaning |
|---|---|
| `BAD_REQUEST` | missing field |
| `UNKNOWN_OP` | no such verb |
"""


def _wire_project(protocol=PROTOCOL_SRC, server=SERVER_SRC, client=CLIENT_SRC,
                  aio=AIO_SRC, doc=DOC_TEXT):
    return _project(
        {
            "src/repro/server/protocol.py": protocol,
            "src/repro/server/server.py": server,
            "src/repro/client/client.py": client,
            "src/repro/client/aio.py": aio,
        },
        doc_text=doc,
    )


class TestWireContract:
    def test_synced_fixture_is_clean(self):
        assert WireContractRule().check_project(_wire_project()) == []

    def test_rule_is_silent_without_the_layout(self):
        project = _project({"src/repro/mod.py": "def f():\n    return 1\n"})
        assert WireContractRule().check_project(project) == []

    def test_op_removed_from_client_stub(self):
        # The seeded-drift acceptance case: drop PING from the async
        # client and exactly one finding names that client and that op.
        desynced = AIO_SRC.replace(
            'return await self._request("PING")', "return None"
        )
        findings = WireContractRule().check_project(_wire_project(aio=desynced))
        assert len(findings) == 1
        assert findings[0].rule == "wire-contract"
        assert "PING" in findings[0].message
        assert "client/aio.py" in findings[0].message
        assert findings[0].file == "src/repro/server/protocol.py"

    def test_client_op_outside_catalogue(self):
        rogue = CLIENT_SRC + "\n        def stats(self):\n            return self._request(\"STATS\")\n"
        findings = WireContractRule().check_project(_wire_project(client=rogue))
        assert len(findings) == 1
        assert "STATS" in findings[0].message
        assert findings[0].file == "src/repro/client/client.py"

    def test_op_without_server_handler(self):
        desynced = SERVER_SRC.replace("def _op_ping", "def _unused_ping")
        findings = WireContractRule().check_project(_wire_project(server=desynced))
        assert len(findings) == 1
        assert "_op_ping" in findings[0].message

    def test_handler_without_op(self):
        extra = SERVER_SRC + "\n        def _op_extra(self, request):\n            return {}\n"
        findings = WireContractRule().check_project(_wire_project(server=extra))
        assert len(findings) == 1
        assert "unreachable" in findings[0].message
        assert findings[0].file == "src/repro/server/server.py"

    def test_error_code_removed_from_docs_table(self):
        desynced = DOC_TEXT.replace("| `UNKNOWN_OP` | no such verb |\n", "")
        findings = WireContractRule().check_project(_wire_project(doc=desynced))
        assert len(findings) == 1
        assert "UNKNOWN_OP" in findings[0].message
        assert "missing from the code table" in findings[0].message

    def test_stale_docs_row(self):
        stale = DOC_TEXT + "| `GONE_CODE` | long retired |\n"
        findings = WireContractRule().check_project(_wire_project(doc=stale))
        assert len(findings) == 1
        assert "GONE_CODE" in findings[0].message
        assert findings[0].file == "docs/internals.md"

    def test_emitted_code_outside_catalogue(self):
        rogue = SERVER_SRC.replace('"BAD_REQUEST"', '"MADE_UP"')
        findings = WireContractRule().check_project(_wire_project(server=rogue))
        # Two sides of the same drift: the rogue emission, and the
        # catalogued BAD_REQUEST it replaced going dead in the server.
        assert len(findings) == 2
        assert any("MADE_UP" in f.message for f in findings)
        assert any(
            "BAD_REQUEST" in f.message and "dead contract" in f.message
            for f in findings
        )

    def test_dead_catalogue_code(self):
        bloated = PROTOCOL_SRC.replace(
            '"UNKNOWN_OP": "no such verb",',
            '"UNKNOWN_OP": "no such verb",\n        "NEVER_SENT": "dead",',
        )
        doc = DOC_TEXT.replace(
            "| `UNKNOWN_OP` | no such verb |",
            "| `UNKNOWN_OP` | no such verb |\n| `NEVER_SENT` | dead |",
        )
        findings = WireContractRule().check_project(
            _wire_project(protocol=bloated, doc=doc)
        )
        assert len(findings) == 1
        assert "NEVER_SENT" in findings[0].message
        assert "dead contract" in findings[0].message

    def test_missing_doc_table_is_one_finding(self):
        no_codes = "\n".join(
            line for line in DOC_TEXT.splitlines() if "code" not in line.lower()
        )
        findings = WireContractRule().check_project(_wire_project(doc=no_codes))
        assert any("undocumented" in f.message for f in findings)


def test_real_wire_surfaces_agree():
    """The live repo passes its own wire-contract rule end to end."""
    report = check_repo(rules=[WireContractRule()])
    assert report.ok, "\n" + report.format()


# ---------------------------------------------------------------------------
# baseline mode
# ---------------------------------------------------------------------------


BARE_EXCEPT_SRC = """
    def f():
        try:
            return 1
        except Exception:
            pass
    """


class TestBaseline:
    def _report(self, baseline=None):
        project = Project(
            root=Path("."), modules=[_module(BARE_EXCEPT_SRC, "src/repro/m.py")]
        )
        return run_check(project, [BareExceptRule()], baseline=baseline)

    def test_baseline_suppresses_known_findings(self, tmp_path):
        first = self._report()
        assert len(first.findings) == 1
        path = tmp_path / "baseline.json"
        path.write_text(first.to_json())
        second = self._report(baseline=load_baseline(path))
        assert second.findings == []
        assert second.baselined == 1
        assert second.ok and second.exit_code == 0
        assert "1 baselined" in second.format()
        assert second.to_dict()["baselined"] == 1

    def test_baseline_does_not_hide_new_findings(self, tmp_path):
        first = self._report()
        path = tmp_path / "baseline.json"
        path.write_text(first.to_json())
        baseline = load_baseline(path)
        project = Project(
            root=Path("."),
            modules=[
                _module(BARE_EXCEPT_SRC, "src/repro/m.py"),
                _module(BARE_EXCEPT_SRC, "src/repro/fresh.py"),
            ],
        )
        report = run_check(project, [BareExceptRule()], baseline=baseline)
        assert len(report.findings) == 1
        assert report.findings[0].file == "src/repro/fresh.py"
        assert report.baselined == 1

    def test_load_baseline_rejects_non_reports(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_baseline(path)


# ---------------------------------------------------------------------------
# CLI filters
# ---------------------------------------------------------------------------


class TestCliFilters:
    def _write_pkg(self, tmp_path, body=BARE_EXCEPT_SRC):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(textwrap.dedent(body))
        return pkg

    def test_only_runs_one_rule(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        rc = cli_main(
            ["check", "--root", str(pkg), "--only", "bare-except", "--format=json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert data["rules"] == ["bare-except"]
        assert data["counts"]["error"] == 1

    def test_exclude_drops_the_rule(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        rc = cli_main(
            ["check", "--root", str(pkg), "--exclude", "bare-except", "--format=json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert "bare-except" not in data["rules"]
        assert data["findings"] == []

    def test_exclude_unknown_rule_exits_two(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        assert cli_main(["check", "--root", str(pkg), "--exclude", "nope"]) == 2

    def test_only_unknown_rule_exits_two(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        assert cli_main(["check", "--root", str(pkg), "--only", "nope"]) == 2

    def test_baseline_gates_no_new_findings(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path)
        rc = cli_main(["check", "--root", str(pkg), "--format=json"])
        assert rc == 1
        baseline = tmp_path / "baseline.json"
        baseline.write_text(capsys.readouterr().out)
        rc = cli_main(
            [
                "check",
                "--root",
                str(pkg),
                "--baseline",
                str(baseline),
                "--format=json",
            ]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["baselined"] >= 1
        assert data["findings"] == []

    def test_bad_baseline_exits_two(self, tmp_path):
        pkg = self._write_pkg(tmp_path)
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        assert (
            cli_main(["check", "--root", str(pkg), "--baseline", str(junk)]) == 2
        )


# ---------------------------------------------------------------------------
# regression: the real violations this rule family caught, stay fixed
# ---------------------------------------------------------------------------


def test_run_server_port_file_write_is_offloaded():
    """The port-file write in run_server._main hops through an executor
    (it was a blocking open() on the event loop when first linted)."""
    report = check_repo(rules=[AsyncDisciplineRule()])
    assert report.ok, "\n" + report.format()
    # The two shutdown-path store calls stay visible as suppressions.
    assert report.suppressed >= 2


def test_repo_lock_graph_is_acyclic():
    report = check_repo(rules=[LockOrderRule()])
    assert report.ok, "\n" + report.format()
