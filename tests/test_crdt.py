"""Tests for both CRDT families: semantics, convergence, cross-site use."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import TardisStore
from repro.crdt import (
    LockingKV,
    MemoryKV,
    SeqLWWRegister,
    SeqMVRegister,
    SeqOpCounter,
    SeqORSet,
    SeqPNCounter,
    TardisCounter,
    TardisLWWRegister,
    TardisMVRegister,
    TardisORSet,
    VectorClock,
)
from repro.replication import Cluster


class TestVectorClock:
    def test_empty(self):
        vc = VectorClock()
        assert vc.get("a") == 0
        assert len(vc) == 0
        assert vc.dominates(VectorClock())

    def test_increment_immutable(self):
        vc = VectorClock()
        vc2 = vc.increment("a")
        assert vc.get("a") == 0
        assert vc2.get("a") == 1

    def test_join(self):
        a = VectorClock({"x": 3, "y": 1})
        b = VectorClock({"y": 2, "z": 5})
        j = a.join(b)
        assert j.as_dict() == {"x": 3, "y": 2, "z": 5}

    def test_dominance_and_concurrency(self):
        a = VectorClock({"x": 2})
        b = VectorClock({"x": 1, "y": 1})
        assert not a.dominates(b)
        assert not b.dominates(a)
        assert a.concurrent_with(b)
        c = a.join(b)
        assert c.dominates(a) and c.dominates(b)
        assert not c.concurrent_with(a)

    def test_equality_hash(self):
        assert VectorClock({"a": 1}) == VectorClock({"a": 1, "b": 0})
        assert hash(VectorClock({"a": 1})) == hash(VectorClock({"a": 1}))

    @given(
        st.dictionaries(st.sampled_from("abc"), st.integers(0, 5)),
        st.dictionaries(st.sampled_from("abc"), st.integers(0, 5)),
    )
    @settings(max_examples=100)
    def test_join_is_lub(self, d1, d2):
        a, b = VectorClock(d1), VectorClock(d2)
        j = a.join(b)
        assert j.dominates(a) and j.dominates(b)
        assert j == b.join(a)  # commutative
        assert j.join(j) == j  # idempotent


class TestSeqCounters:
    def test_op_counter_local(self):
        kv = MemoryKV()
        c = SeqOpCounter(kv, "cnt", "r1")
        c.increment(5)
        c.decrement(2)
        assert c.value(["r1"]) == 3

    def test_op_counter_apply_remote_idempotent(self):
        kv = MemoryKV()
        c = SeqOpCounter(kv, "cnt", "r1")
        op = ("r2", 1, 7)
        c.apply(op)
        c.apply(op)  # duplicate delivery
        assert c.value(["r1", "r2"]) == 7

    def test_op_counter_two_replicas_converge(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        c1 = SeqOpCounter(kv1, "c", "r1")
        c2 = SeqOpCounter(kv2, "c", "r2")
        ops1 = [c1.increment(1), c1.increment(2)]
        ops2 = [c2.decrement(4)]
        for op in ops2:
            c1.apply(op)
        for op in ops1:
            c2.apply(op)
        replicas = ["r1", "r2"]
        assert c1.value(replicas) == c2.value(replicas) == -1

    def test_pn_counter_merge(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        c1 = SeqPNCounter(kv1, "c", "r1")
        c2 = SeqPNCounter(kv2, "c", "r2")
        c1.increment(10)
        c2.decrement(3)
        c2.increment(1)
        c1.merge(c2.state())
        c2.merge(c1.state())
        assert c1.value() == c2.value() == 8

    def test_pn_counter_merge_idempotent(self):
        kv = MemoryKV()
        c = SeqPNCounter(kv, "c", "r1")
        c.increment(5)
        state = c.state()
        c.merge(state)
        c.merge(state)
        assert c.value() == 5

    @given(st.lists(st.tuples(st.sampled_from([0, 1]), st.integers(1, 5)), max_size=20))
    @settings(max_examples=50)
    def test_pn_counter_value_matches_model(self, ops):
        kv = MemoryKV()
        c = SeqPNCounter(kv, "c", "r")
        expected = 0
        for kind, amount in ops:
            if kind:
                c.increment(amount)
                expected += amount
            else:
                c.decrement(amount)
                expected -= amount
        assert c.value() == expected

    def test_on_locking_backend(self):
        c = SeqPNCounter(LockingKV(), "c", "r1")
        c.increment(2)
        c.decrement(1)
        assert c.value() == 1


class TestSeqRegisters:
    def test_lww_local(self):
        r = SeqLWWRegister(MemoryKV(), "reg", "r1")
        assert r.value() is None
        r.assign("a")
        r.assign("b")
        assert r.value() == "b"

    def test_lww_merge_latest_wins(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        r1 = SeqLWWRegister(kv1, "reg", "r1")
        r2 = SeqLWWRegister(kv2, "reg", "r2")
        s1 = r1.assign("from-r1", ts=5)
        s2 = r2.assign("from-r2", ts=9)
        r1.merge(s2)
        r2.merge(s1)
        assert r1.value() == r2.value() == "from-r2"

    def test_lww_tie_broken_by_replica(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        r1 = SeqLWWRegister(kv1, "reg", "r1")
        r2 = SeqLWWRegister(kv2, "reg", "r2")
        s1 = r1.assign("v1", ts=7)
        s2 = r2.assign("v2", ts=7)
        r1.merge(s2)
        r2.merge(s1)
        assert r1.value() == r2.value() == "v2"  # r2 > r1

    def test_mv_register_keeps_concurrent_values(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        r1 = SeqMVRegister(kv1, "reg", "r1")
        r2 = SeqMVRegister(kv2, "reg", "r2")
        r1.assign("a")
        r2.assign("b")
        r1.merge(r2.state())
        r2.merge(r1.state())
        assert sorted(r1.values()) == sorted(r2.values()) == ["a", "b"]

    def test_mv_register_assign_supersedes(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        r1 = SeqMVRegister(kv1, "reg", "r1")
        r2 = SeqMVRegister(kv2, "reg", "r2")
        r1.assign("a")
        r2.assign("b")
        r1.merge(r2.state())
        r1.assign("resolved")  # observed both -> dominates both
        r2.merge(r1.state())
        assert r2.values() == ["resolved"]


class TestSeqORSet:
    def test_add_remove(self):
        s = SeqORSet(MemoryKV(), "s", "r1")
        s.add("x")
        assert s.contains("x")
        s.remove("x")
        assert not s.contains("x")
        assert s.elements() == set()

    def test_add_wins_on_concurrent_add_remove(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        s1 = SeqORSet(kv1, "s", "r1")
        s2 = SeqORSet(kv2, "s", "r2")
        s1.add("x")
        s2.merge(s1.state())
        # Concurrently: r1 removes x, r2 re-adds x (a fresh tag).
        s1.remove("x")
        s2.add("x")
        s1.merge(s2.state())
        s2.merge(s1.state())
        assert s1.contains("x") and s2.contains("x")

    def test_remove_only_observed(self):
        kv1, kv2 = MemoryKV(), MemoryKV()
        s1 = SeqORSet(kv1, "s", "r1")
        s2 = SeqORSet(kv2, "s", "r2")
        s1.add("x")
        s2.remove("x")  # never observed: no-op
        s1.merge(s2.state())
        assert s1.contains("x")

    @given(st.lists(st.tuples(st.sampled_from(["add", "rem"]), st.integers(0, 5)), max_size=30))
    @settings(max_examples=50)
    def test_single_replica_matches_set(self, ops):
        s = SeqORSet(MemoryKV(), "s", "r")
        model = set()
        for op, e in ops:
            if op == "add":
                s.add(e)
                model.add(e)
            else:
                s.remove(e)
                model.discard(e)
        assert s.elements() == model


class TestTardisCrdts:
    def fork_two_writers(self, make_op):
        """Run two conflicting single-mode ops from a common state."""
        store = TardisStore("A")
        a, b = store.session("a"), store.session("b")
        return store, a, b

    def test_counter_single_mode(self):
        store = TardisStore("A")
        c = TardisCounter(store, "cnt")
        c.increment(3)
        c.decrement(1)
        assert c.value() == 2

    def test_counter_branch_and_merge(self):
        store = TardisStore("A")
        c1 = TardisCounter(store, "cnt", session=store.session("a"))
        c2 = TardisCounter(store, "cnt", session=store.session("b"))
        c1.increment(0)  # seed a common base
        c1.increment(10)
        # b still reads the seed state? No: b's Ancestor anchor is the
        # root, so it reads the most recent branch. Force a conflict:
        t1 = store.begin(session=store.session("a"))
        t2 = store.begin(session=store.session("b"))
        v1, v2 = t1.get("cnt"), t2.get("cnt")
        t1.put("cnt", v1 + 5)
        t2.put("cnt", v2 + 7)
        t1.commit()
        t2.commit()
        merged = TardisCounter(store, "cnt", session=store.session("a")).merge()
        assert merged == 10 + 5 + 7
        assert TardisCounter(store, "cnt").value() == 22

    def test_counter_merge_noop_single_branch(self):
        store = TardisStore("A")
        c = TardisCounter(store, "cnt")
        c.increment(4)
        assert c.merge() is None
        assert c.value() == 4

    def test_lww_register_merge(self):
        store = TardisStore("A")
        r = TardisLWWRegister(store, "reg")
        r.assign("first", ts=1)
        t1 = store.begin(session=store.session("a"))
        t2 = store.begin(session=store.session("b"))
        t1.put("reg", ((5, "A"), "older"))
        t2.put("reg", ((9, "A"), "newer"))
        t1.commit()
        t2.commit()
        assert r.merge() == "newer"
        assert r.value() == "newer"

    def test_mv_register_blind_assigns_fork(self):
        """Concurrent blind assigns must fork, not silently overwrite."""
        store = TardisStore("A")
        r = TardisMVRegister(store, "reg")
        r.assign("base")
        r1 = TardisMVRegister(store, "reg", session=store.session("a"))
        r2 = TardisMVRegister(store, "reg", session=store.session("b"))
        # Interleave two blind assigns from the same snapshot: under the
        # write-write-forks end constraint the second one branches.
        t1 = store.begin(session=r1.session)
        t2 = store.begin(session=r2.session)
        t1.put("reg", ("left",))
        t2.put("reg", ("right",))
        from repro.crdt.tardis_impls import _WW_FORKS

        t1.commit(_WW_FORKS)
        t2.commit(_WW_FORKS)
        assert store.metrics.forks == 1
        assert sorted(r.merge()) == ["left", "right"]

    def test_mv_register_merge_across_sites(self):
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        r_us = TardisMVRegister(us, "reg", session=us.session("w"))
        r_us.assign("seed")
        cluster.run(until=50)
        r_eu = TardisMVRegister(eu, "reg", session=eu.session("w"))
        r_us.assign("left")
        r_eu.assign("right")
        cluster.run(until=150)
        merged = TardisMVRegister(us, "reg", session=us.session("m")).merge()
        assert sorted(merged) == ["left", "right"]

    def test_orset_add_wins_across_sites(self):
        """Concurrent remove and fresh re-add: the re-add wins."""
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        s_us = TardisORSet(us, "s", session=us.session("w"))
        s_us.add("x")
        s_us.add("y")
        cluster.run(until=50)
        s_eu = TardisORSet(eu, "s", session=eu.session("w"))
        s_us.remove("x")
        s_eu.add("x")  # fresh tag: a genuine re-add, concurrent with it
        cluster.run(until=150)
        merged = TardisORSet(us, "s", session=us.session("m")).merge()
        assert merged == frozenset({"x", "y"})

    def test_orset_remove_wins_over_retention(self):
        """A removal beats mere unobserved presence on the other branch."""
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        s_us = TardisORSet(us, "s", session=us.session("w"))
        s_us.add("x")
        s_us.add("y")
        cluster.run(until=50)
        s_eu = TardisORSet(eu, "s", session=eu.session("w"))
        s_us.remove("x")
        s_eu.add("z")  # does not touch x: retention only
        cluster.run(until=150)
        merged = TardisORSet(us, "s", session=us.session("m")).merge()
        assert merged == frozenset({"y", "z"})

    def test_counter_across_sites(self):
        """Cross-site counter: StateID replication carries branch context."""
        cluster = Cluster(n_sites=2, default_latency_ms=5)
        us, eu = cluster.stores["us"], cluster.stores["eu"]
        c_us = TardisCounter(us, "cnt", session=us.session("w"))
        c_us.increment(0)
        cluster.run(until=50)
        c_eu = TardisCounter(eu, "cnt", session=eu.session("w"))
        c_us.increment(3)
        c_eu.increment(4)
        cluster.run(until=150)
        merged = TardisCounter(us, "cnt", session=us.session("m")).merge()
        assert merged == 7
        cluster.run(until=300)
        # The merge replicated: eu reads the converged value.
        assert TardisCounter(eu, "cnt", session=eu.session("m2")).value() == 7
