"""Tests for fault tolerance: WAL logging, crash recovery, checkpoints (§6.5)."""

import os

import pytest

from repro import TardisStore, checkpoint_store, recover_store


def make_store(tmp_path, name="wal.log", sync=True, **kw):
    return TardisStore("A", wal_path=str(tmp_path / name), wal_sync=sync, **kw)


class TestRecovery:
    def test_recover_linear_history(self, tmp_path):
        store = make_store(tmp_path)
        sess = store.session("a")
        for i in range(5):
            t = store.begin(session=sess)
            t.put("x", i)
            t.put("k%d" % i, i)
            t.commit()
        store.close()

        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 5
        assert report["discarded"] == 0
        assert recovered.get("x") == 4
        for i in range(5):
            assert recovered.get("k%d" % i) == i
        assert len(recovered.dag) == len(store.dag)

    def test_recover_branched_history(self, tmp_path):
        store = make_store(tmp_path)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        m = store.begin_merge(session=a)
        m.put("x", 6)
        m.commit()
        store.close()

        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 4
        assert recovered.get("x") == 6
        assert recovered.dag.num_forks() == store.dag.num_forks()
        # Branch structure identical: same leaves.
        assert {l.id for l in recovered.dag.leaves()} == {
            l.id for l in store.dag.leaves()
        }

    def test_recovered_store_continues(self, tmp_path):
        store = make_store(tmp_path)
        store.put("x", 1)
        store.close()
        recovered, _ = recover_store("A", str(tmp_path / "wal.log"))
        sid = recovered.put("x", 2)
        assert sid.counter > 1  # id allocation resumed past recovered ids
        assert recovered.get("x") == 2

    def test_async_flush_crash_loses_unflushed_suffix(self, tmp_path):
        store = make_store(tmp_path, sync=False)
        store.put("x", 1)
        store.wal.flush()
        store.put("x", 2)  # never flushed
        store.wal.drop_buffered()  # crash
        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 1
        assert recovered.get("x") == 1

    def test_torn_tail_recovers_prefix(self, tmp_path):
        store = make_store(tmp_path)
        store.put("x", 1)
        store.put("x", 2)
        store.close()
        path = str(tmp_path / "wal.log")
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 4)
        recovered, report = recover_store("A", path)
        assert report["replayed"] == 1
        assert recovered.get("x") == 1

    def test_partial_record_persistence_discards_suffix(self, tmp_path):
        """Without logged values, a missing record cuts the log there (§6.5)."""
        store = make_store(tmp_path, log_values=False)
        store.put("x", 1)
        store.put("y", 2)
        store.put("z", 3)
        store.close()

        persisted = {"x": 1, "z": 3}  # y's record never hit disk

        def record_source(key, state_id):
            from repro.core.recovery import _MISSING

            return persisted.get(key, _MISSING)

        recovered, report = recover_store(
            "A", str(tmp_path / "wal.log"), record_source=record_source
        )
        # y's transaction and everything after it are discarded.
        assert report["replayed"] == 1
        assert report["discarded"] == 2
        assert recovered.get("x") == 1
        assert recovered.get("y") is None
        assert recovered.get("z") is None

    def test_metrics_count_replays_as_local(self, tmp_path):
        store = make_store(tmp_path)
        store.put("x", 1)
        store.close()
        recovered, _ = recover_store("A", str(tmp_path / "wal.log"))
        assert recovered.metrics.remote_applied == 0


class TestCheckpoint:
    def test_checkpoint_and_recover(self, tmp_path):
        store = make_store(tmp_path)
        sess = store.session("a")
        for i in range(10):
            t = store.begin(session=sess)
            t.put("x", i)
            t.commit()
        snap = str(tmp_path / "snap.ckpt")
        n = checkpoint_store(store, snap)
        assert n == len(store.dag)
        # More commits after the checkpoint land in the compacted log.
        store.put("x", 99, session=sess)
        store.close()

        recovered, report = recover_store(
            "A", str(tmp_path / "wal.log"), snapshot_path=snap
        )
        assert report["checkpoint_states"] == n
        assert report["replayed"] == 1
        assert recovered.get("x") == 99

    def test_checkpoint_compacts_log(self, tmp_path):
        store = make_store(tmp_path)
        for i in range(50):
            store.put("x", i)
        size_before = os.path.getsize(store.wal.path)
        checkpoint_store(store, str(tmp_path / "snap.ckpt"))
        size_after = os.path.getsize(store.wal.path)
        assert size_after < size_before / 5
        store.close()

    def test_checkpoint_after_gc_preserves_promotions(self, tmp_path):
        store = make_store(tmp_path)
        sess = store.session("a")
        first = store.put("old", "v", session=sess)
        for i in range(10):
            t = store.begin(session=sess)
            t.put("x", i)
            t.commit()
        sess.place_ceiling()
        store.collect_garbage()
        snap = str(tmp_path / "snap.ckpt")
        checkpoint_store(store, snap)
        store.close()
        recovered, _ = recover_store(
            "A", str(tmp_path / "wal.log"), snapshot_path=snap
        )
        # The promoted id still resolves after recovery.
        assert recovered.dag.resolve(first) is not None
        assert recovered.get("old") == "v"

    def test_recover_branched_checkpoint(self, tmp_path):
        store = make_store(tmp_path)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", 1)
        t1.get("x")
        t2.put("x", 2)
        t2.get("x")
        t1.commit()
        t2.commit()
        snap = str(tmp_path / "snap.ckpt")
        checkpoint_store(store, snap)
        store.close()
        recovered, _ = recover_store(
            "A", str(tmp_path / "wal.log"), snapshot_path=snap
        )
        assert len(recovered.dag.leaves()) == 2
        m = recovered.begin_merge()
        assert sorted(m.get_all("x")) == [1, 2]
        m.abort()
