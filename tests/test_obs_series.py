"""Tests for windowed series, the divergence monitor, the flight
recorder, and cross-replica trace contexts (repro.obs.series /
repro.obs.flight / repro.obs.context)."""

import json

import pytest

from repro import TardisStore
from repro.obs import metrics as met
from repro.obs import tracing as trc
from repro.obs.context import (
    TraceContext,
    causal_timeline,
    format_timeline,
    merge_events,
    trace_id_of,
)
from repro.obs.flight import FlightRecorder, dag_snapshot, format_flight
from repro.obs.series import (
    DivergenceMonitor,
    Trigger,
    WindowedCounter,
    WindowedGauge,
    dag_extent,
)
from repro.obs.tracing import Tracer
from repro.sim.des import Simulator


def branched_store(site="obs"):
    """One fork (two leaves) plus a merge back to a single leaf."""
    store = TardisStore(site)
    a, b = store.session("a"), store.session("b")
    store.put("x", 0, session=a)
    t1, t2 = store.begin(session=a), store.begin(session=b)
    t1.put("x", t1.get("x") + 1)
    t2.put("x", t2.get("x") + 2)
    t1.commit()
    t2.commit()
    return store


class TestWindowedSeries:
    def test_gauge_samples_and_last(self):
        g = WindowedGauge("g", capacity=8)
        assert len(g) == 0 and g.last() is None
        g.sample(1.0, 10.0)
        g.sample(2.0, 20.0)
        assert g.samples() == [(1.0, 10.0), (2.0, 20.0)]
        assert g.last() == (2.0, 20.0)

    def test_gauge_window_is_bounded(self):
        g = WindowedGauge("g", capacity=4)
        for i in range(10):
            g.sample(float(i), float(i))
        assert len(g) == 4
        assert g.samples()[0] == (6.0, 6.0)  # oldest samples evicted

    def test_gauge_to_dict(self):
        g = WindowedGauge("g", capacity=4)
        g.sample(1.0, 2.0)
        data = g.to_dict()
        assert data["type"] == "series"
        assert data["samples"] == [[1.0, 2.0]]

    def test_counter_is_cumulative(self):
        c = WindowedCounter("c", capacity=8)
        c.inc()
        c.inc(2)
        c.sample(1.0)
        c.sample(2.0, 5)  # sample(t, n) folds n in before sampling
        assert c.total == 8
        assert c.samples() == [(1.0, 3.0), (2.0, 8.0)]


class TestTrigger:
    def fired(self):
        hits = []
        trigger = Trigger(
            "s", threshold=2.0, hold_ms=10.0,
            action=lambda mon, trg, now, name, value: hits.append((now, value)),
        )
        return trigger, hits

    def test_fires_after_hold(self):
        trigger, hits = self.fired()
        trigger.observe(None, "s@a", 0.0, 5.0)
        assert hits == []  # over threshold, hold not yet served
        trigger.observe(None, "s@a", 9.0, 5.0)
        assert hits == []
        trigger.observe(None, "s@a", 10.0, 6.0)
        assert hits == [(10.0, 6.0)]

    def test_fires_once_per_excursion_then_rearms(self):
        trigger, hits = self.fired()
        for t in (0.0, 10.0, 20.0):
            trigger.observe(None, "s@a", t, 5.0)
        assert len(hits) == 1  # held over: still one dump
        trigger.observe(None, "s@a", 30.0, 1.0)  # falls back: re-arms
        trigger.observe(None, "s@a", 40.0, 5.0)
        trigger.observe(None, "s@a", 50.0, 5.0)
        assert len(hits) == 2

    def test_per_series_arming(self):
        trigger, hits = self.fired()
        trigger.observe(None, "s@a", 0.0, 5.0)
        trigger.observe(None, "s@b", 0.0, 5.0)
        trigger.observe(None, "s@a", 10.0, 5.0)
        trigger.observe(None, "s@b", 10.0, 5.0)
        assert len(hits) == 2  # one per watched series


class TestDagExtent:
    def test_linear_chain(self):
        store = TardisStore("lin")
        for i in range(3):
            store.put("k", i)
        width, depth = dag_extent(store.dag)
        assert width == 1
        assert depth == 3  # root at depth 0, three commits

    def test_forked_dag_width(self):
        store = branched_store()
        width, depth = dag_extent(store.dag)
        assert width == 2  # the two conflicting commits share a level
        assert len(store.dag.leaves()) == 2


class TestDivergenceMonitor:
    def test_single_site_series(self):
        store = branched_store()
        now = {"t": 0.0}
        monitor = DivergenceMonitor({"obs": store}, clock=lambda: now["t"])
        monitor.sample()
        now["t"] = 5.0
        monitor.sample()
        data = monitor.to_dict()
        assert data["tardis_branch_count@obs"]["samples"] == [[0.0, 2], [5.0, 2]]
        assert data["tardis_merge_debt@obs"]["samples"][-1] == [5.0, 1]
        # diverged the whole time: staleness grows with the clock
        assert data["tardis_staleness_ms@obs"]["samples"] == [[0.0, 0.0], [5.0, 5.0]]

    def test_staleness_resets_on_convergence(self):
        store = branched_store()
        now = {"t": 0.0}
        monitor = DivergenceMonitor({"obs": store}, clock=lambda: now["t"])
        monitor.sample()
        merge = store.begin_merge(session=store.session("a"))
        merge.put("x", max(merge.get_all("x")))
        merge.commit()
        now["t"] = 7.0
        monitor.sample()
        data = monitor.to_dict()
        assert data["tardis_branch_count@obs"]["samples"][-1] == [7.0, 1]
        assert data["tardis_staleness_ms@obs"]["samples"][-1] == [7.0, 0.0]

    def test_replication_lag_between_sites(self):
        a, b = TardisStore("us"), TardisStore("eu")
        a.put("x", 1)  # committed at us, never replicated
        monitor = DivergenceMonitor(
            {"us": a, "eu": b}, clock=lambda: 0.0
        )
        monitor.sample()
        data = monitor.to_dict()
        assert data["tardis_repl_lag@us->eu"]["samples"] == [[0.0, 1]]
        assert data["tardis_repl_lag@eu->us"]["samples"] == [[0.0, 0]]
        assert data["tardis_repl_lag@total"]["samples"] == [[0.0, 1]]

    def test_mirrors_gauges_into_registry(self):
        store = branched_store()
        reg = met.MetricsRegistry()
        with met.use_registry(reg):
            DivergenceMonitor({"obs": store}, clock=lambda: 0.0).sample()
        data = reg.to_dict()
        assert data["tardis_branch_count"]["value"] == 2

    def test_install_samples_on_des_ticks(self):
        store = TardisStore("des")
        sim = Simulator()
        monitor = DivergenceMonitor({"des": store}, clock=lambda: sim.now)
        monitor.install(sim, interval_ms=10.0)
        sim.run(until=45.0)
        assert monitor.samples_taken == 4
        ts = [t for t, _ in monitor.gauge("tardis_branch_count@des").samples()]
        assert ts == [10.0, 20.0, 30.0, 40.0]


class TestFlightRecorder:
    def build(self, out_dir=None):
        tracer = Tracer(capacity=64, enabled=True, clock=lambda: 0.0)
        store = TardisStore("f")
        store.set_tracer(tracer)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 2)  # read-modify-write: true conflict
        t1.commit()
        t2.commit()  # conflict: branch count goes to 2
        now = {"t": 0.0}
        monitor = DivergenceMonitor({"f": store}, clock=lambda: now["t"])
        recorder = FlightRecorder(
            {"f": tracer}, {"f": store}, monitor=monitor, out_dir=out_dir
        )
        return store, monitor, recorder, now

    def test_trip_produces_one_dump(self):
        store, monitor, recorder, now = self.build()
        recorder.arm("tardis_branch_count", threshold=1, hold_ms=10.0)
        monitor.sample()
        assert recorder.dumps == []  # hold not served yet
        now["t"] = 10.0
        monitor.sample()
        now["t"] = 20.0
        monitor.sample()
        assert len(recorder.dumps) == 1  # fired once, stayed tripped
        doc = recorder.dumps[0]
        assert doc["rule"]["series_tripped"] == "tardis_branch_count@f"
        assert doc["tripped_at_ms"] == 10.0

    def test_dump_contents(self):
        store, monitor, recorder, now = self.build()
        monitor.sample()
        doc = recorder.snapshot(reason="manual")
        kinds = {e["kind"] for e in doc["events"]}
        assert "txn.commit" in kinds and "branch.fork" in kinds
        assert all(e["site"] == "f" for e in doc["events"])
        assert doc["dropped_events"] == {"f": 0}
        assert doc["series"]["tardis_branch_count@f"] == [[0.0, 2]]
        snap = doc["dag"]["f"]
        assert len(snap["leaves"]) == 2
        assert {s["id"] for s in snap["states"]} >= set(snap["leaves"])

    def test_dump_written_to_disk_and_formats(self, tmp_path):
        store, monitor, recorder, now = self.build(out_dir=str(tmp_path))
        monitor.sample()
        recorder.record(reason="unit test")
        assert len(recorder.paths) == 1
        with open(recorder.paths[0]) as handle:
            doc = json.load(handle)
        text = format_flight(doc)
        assert "FLIGHT RECORDER DUMP — unit test" in text
        assert "tardis_branch_count@f" in text
        assert "txn.commit" in text

    def test_truncation_is_visible(self):
        tracer = Tracer(capacity=4, enabled=True, clock=lambda: 0.0)
        for i in range(9):
            tracer.event("noise", i=i)
        recorder = FlightRecorder({"t": tracer}, {})
        doc = recorder.snapshot(reason="drop test")
        assert doc["dropped_events"] == {"t": 5}
        assert "truncated timelines: t dropped 5" in format_flight(doc)

    def test_dag_snapshot_shape(self):
        store = branched_store()
        snap = dag_snapshot(store)
        assert snap["site"] == "obs"
        leaf_ids = set(snap["leaves"])
        leaves = [s for s in snap["states"] if s["id"] in leaf_ids]
        assert all(s["leaf"] for s in leaves)
        assert snap["records"] >= 3


class TestTraceContext:
    def test_for_commit_derives_ids(self):
        store = TardisStore("us")
        sid = store.put("x", 1)
        ctx = TraceContext.for_commit(sid, [], "us")
        assert ctx.trace == trace_id_of(sid) == repr(sid)
        assert ctx.parent is None
        ctx2 = TraceContext.for_commit(sid, [sid], "us")
        assert ctx2.parent == repr(sid)

    def test_equality_and_dict(self):
        a = TraceContext("s1@us", None, "us")
        b = TraceContext("s1@us", None, "us")
        assert a == b and hash(a) == hash(b)
        assert a != TraceContext("s1@us", "s0@us", "us")
        assert a.to_dict() == {"trace": "s1@us", "parent": None, "site": "us"}


class TestTimelineReconstruction:
    def test_merge_events_orders_and_tags_sites(self):
        t_us = Tracer(clock=lambda: 0.0)
        t_eu = Tracer(clock=lambda: 0.0)
        t_us.event("a")
        t_eu.event("b")
        merged = merge_events({"us": t_us, "eu": t_eu})
        # equal timestamps: ties break by site name, deterministically
        assert [e.attrs["site"] for e in merged] == ["eu", "us"]
        assert [e.kind for e in merged] == ["b", "a"]

    def test_causal_timeline_includes_consumers(self):
        tracer = Tracer(clock=lambda: 0.0)
        tracer.event("txn.commit", state="s1@us", trace="s1@us", parent=None)
        tracer.event("repl.apply", state="s1@us", trace="s1@us", src="us")
        tracer.event("txn.commit", state="s2@eu", trace="s2@eu", parent="s1@us")
        tracer.event(
            "branch.merge", state="s3@eu", trace="s3@eu",
            parents=("s1@us", "s2@eu"),
        )
        tracer.event("txn.commit", state="s9@eu", trace="s9@eu", parent="s8@eu")
        events = merge_events({"eu": tracer})
        timeline = causal_timeline(events, "s1@us")
        kinds = [e.kind for e in timeline]
        assert kinds == ["txn.commit", "repl.apply", "txn.commit", "branch.merge"]
        text = format_timeline(timeline, "s1@us")
        assert text.startswith("trace s1@us: 4 events")

    def test_store_events_reconstruct_locally(self):
        tracer = Tracer(enabled=True, clock=lambda: 0.0)
        store = TardisStore("us")
        store.set_tracer(tracer)
        sid = store.put("x", 1)
        timeline = causal_timeline(
            merge_events({"us": tracer}), trace_id_of(sid)
        )
        assert [e.kind for e in timeline] == ["txn.commit"]
        assert timeline[0].attrs["state"] == repr(sid)


class TestTracerDropAccounting:
    def test_dropped_counts_evictions(self):
        tracer = Tracer(capacity=3, enabled=True)
        for i in range(5):
            tracer.event("e", i=i)
        assert tracer.dropped == 2
        assert [e.attrs["i"] for e in tracer.events()] == [2, 3, 4]
        tracer.clear()
        assert tracer.dropped == 0

    def test_dropped_metric_mirrored(self):
        reg = met.MetricsRegistry()
        with met.use_registry(reg):
            tracer = Tracer(capacity=2, enabled=True)
            for i in range(6):
                tracer.event("e", i=i)
        assert tracer.dropped == 4
        assert reg.to_dict()["tardis_trace_dropped_total"]["value"] == 4
