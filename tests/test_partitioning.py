"""Tests for the §6.4 partitioning extension."""

import random

import pytest

from repro import TardisStore
from repro.core.state_dag import StateDAG
from repro.obs import metrics as _met
from repro.partitioning import (
    PartitionedStore,
    ShardedRecordStore,
    ShardRouter,
    legacy_shard_of,
    stable_key_bytes,
)
from repro.partitioning.sharded import default_shard_of
from repro.replication.network import SimNetwork
from repro.replication.replicator import Replicator
from repro.sim.des import Simulator
from repro.errors import TransactionAborted


class TestShardRouter:
    def test_plan_groups_in_ascending_shard_order(self):
        router = ShardRouter(4)
        keys = ["key%03d" % i for i in range(40)]
        plan = router.plan(keys)
        assert list(plan) == sorted(plan)
        assert sorted(k for batch in plan.values() for k in batch) == sorted(keys)
        for shard, batch in plan.items():
            for key in batch:
                assert router.shard_of(key) == shard

    def test_plan_preserves_input_order_within_shard(self):
        router = ShardRouter(2)
        keys = ["k%02d" % i for i in range(20)]
        for batch in router.plan(keys).values():
            assert batch == [k for k in keys if k in set(batch)]

    def test_consistent_hashing_moves_few_keys(self):
        """Growing the ring 4->5 moves ~1/5 of keys, not ~4/5 (modulo)."""
        router = ShardRouter(4)
        keys = ["key%05d" % i for i in range(2000)]
        moves = router.migration_plan(keys, router.rebalanced(5))
        assert 0 < len(moves) < len(keys) * 0.40

    def test_migration_plan_is_sorted_and_typed(self):
        router = ShardRouter(3)
        moves = router.migration_plan(
            ["k%d" % i for i in range(100)], router.rebalanced(4)
        )
        assert moves == sorted(moves, key=lambda m: (m[1], m[2]))
        for _key, old, new in moves:
            assert old != new

    def test_custom_shard_fn_bypasses_ring(self):
        router = ShardRouter(3, shard_of=lambda k, n: 1)
        assert router.shard_of("anything") == 1
        assert list(router.plan(["a", "b"])) == [1]


class TestStableShardOf:
    """Satellite (a): the shard function hashes a stable serialization."""

    # Pinned assignments: changing the hash silently re-homes every key,
    # so any change to stable_key_bytes/default_shard_of must show up
    # here as an explicit, reviewed diff.
    PINNED = {
        "alice": 1,
        "key00042": 7,
        ("user", 7): 7,
        42: 4,
        None: 4,
        b"blob": 5,
    }

    def test_pinned_assignments(self):
        for key, shard in self.PINNED.items():
            assert default_shard_of(key, 8) == shard, key

    def test_equal_numbers_route_identically(self):
        # repr-based hashing sent 42 and 42.0 to different shards even
        # though dict lookup treats them as the same key.
        assert stable_key_bytes(5) == stable_key_bytes(5.0)
        assert stable_key_bytes(1) == stable_key_bytes(True)
        for n in range(64):
            assert default_shard_of(n, 8) == default_shard_of(float(n), 8)

    def test_serialization_is_type_tagged(self):
        # "1" the string must not collide with 1 the int, etc.
        assert stable_key_bytes("1") != stable_key_bytes(1)
        assert stable_key_bytes(b"x") != stable_key_bytes("x")
        assert stable_key_bytes(("a",)) != stable_key_bytes("a")

    def test_legacy_shim_preserves_old_assignments(self):
        # The repr-based compat shim for stores sharded under the old
        # scheme: pinned to the historical values.
        assert legacy_shard_of("alice", 8) == 6
        assert legacy_shard_of(42, 8) == 0
        assert legacy_shard_of(42.0, 8) == 4  # the old inconsistency

    def test_distribution_of_stable_hash(self):
        counts = [0] * 8
        for i in range(4000):
            counts[default_shard_of(("user", i), 8)] += 1
        assert min(counts) > 4000 / 8 * 0.6
        assert max(counts) < 4000 / 8 * 1.5


class TestShardAccessMetrics:
    """Satellite (b): per-shard access counters in the obs registry."""

    def test_accesses_exported_per_shard(self):
        registry = _met.MetricsRegistry(enabled=True)
        previous = _met.set_default_registry(registry)
        try:
            store = PartitionedStore("A", n_shards=4)
            with store.begin() as txn:
                for i in range(64):
                    txn.put("key%04d" % i, i)
            store.get("key0000")
            total = 0
            for shard in range(4):
                total += registry.counter_value(
                    "tardis_shard_access_total@s%d" % shard
                )
            assert total == sum(store.shard_accesses())
            assert total >= 64
        finally:
            _met.set_default_registry(previous)


class TestShardedRecordStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRecordStore(n_shards=0)

    def test_routing_is_stable(self):
        store = ShardedRecordStore(n_shards=4)
        for key in ("a", "b", ("tuple", 1), 42):
            assert store.shard_index(key) == store.shard_index(key)

    def test_distribution_roughly_even(self):
        counts = [0] * 8
        for i in range(4000):
            counts[default_shard_of("key%05d" % i, 8)] += 1
        assert min(counts) > 4000 / 8 * 0.6
        assert max(counts) < 4000 / 8 * 1.5

    def test_custom_shard_function(self):
        store = ShardedRecordStore(n_shards=2, shard_of=lambda k, n: 0)
        dag = StateDAG("A")
        state = dag.create_state([dag.root])
        store.write("x", state.id, 1)
        store.write("y", state.id, 2)
        assert store.balance() == [2, 0]

    def test_staged_commit_contract(self):
        store = ShardedRecordStore(n_shards=4)
        dag = StateDAG("A")
        state = dag.create_state([dag.root])
        writes = {"key%03d" % i: i for i in range(32)}
        staged = store.prepare_commit(writes)
        # Planning alone writes nothing.
        assert store.num_records() == 0
        assert staged.n_shards > 1
        assert [shard for shard, _batch in staged.plan] == sorted(
            shard for shard, _batch in staged.plan
        )
        store.install_commit(staged, state)
        assert store.num_records() == len(writes)
        for key, value in writes.items():
            assert store.read_visible(key, state, dag) == (state.id, value)

    def test_abandon_commit_is_a_noop(self):
        store = ShardedRecordStore(n_shards=2)
        staged = store.prepare_commit({"a": 1})
        store.abandon_commit(staged)
        assert store.num_records() == 0

    def test_rebalance_moves_records(self):
        store = ShardedRecordStore(n_shards=2)
        dag = StateDAG("A")
        state = dag.create_state([dag.root])
        keys = ["key%03d" % i for i in range(50)]
        for i, key in enumerate(keys):
            store.write(key, state.id, i)
        moved = store.rebalance(4)
        assert store.n_shards == 4
        assert sum(store.balance()) == len(keys)
        assert 0 < len(moved) < len(keys)
        for i, key in enumerate(keys):
            assert store.read_visible(key, state, dag) == (state.id, i)


class TestPartitionedStore:
    def test_behaves_like_tardis_store(self):
        """Property: identical schedule => identical outcomes vs unsharded."""
        rng = random.Random(7)
        schedule = []
        for i in range(60):
            ops = [
                ("r" if rng.random() < 0.5 else "w", "k%d" % rng.randrange(8),
                 rng.randrange(100))
                for _ in range(rng.randint(1, 4))
            ]
            schedule.append(("s%d" % rng.randrange(3), ops))

        def run(store):
            outcomes = []
            for session_name, ops in schedule:
                txn = store.begin(session=store.session(session_name))
                seen = []
                for kind, key, value in ops:
                    if kind == "r":
                        seen.append(txn.get(key, default=None))
                    else:
                        txn.put(key, value)
                try:
                    txn.commit()
                    outcomes.append(("ok", tuple(seen)))
                except TransactionAborted:
                    outcomes.append(("abort", tuple(seen)))
            return outcomes

        plain = run(TardisStore("A"))
        sharded = run(PartitionedStore("A", n_shards=4))
        assert plain == sharded

    def test_records_spread_across_shards(self):
        store = PartitionedStore("A", n_shards=4)
        with store.begin() as txn:
            for i in range(100):
                txn.put("key%04d" % i, i)
        balance = store.shard_balance()
        assert sum(balance) == 100
        assert all(b > 0 for b in balance)
        assert sum(store.shard_accesses()) >= 100

    def test_cross_shard_transaction_atomic(self):
        store = PartitionedStore("A", n_shards=4, shard_of=lambda k, n: hash(k) % n)
        with store.begin() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
            txn.put("c", 3)
        txn = store.begin()
        assert (txn.get("a"), txn.get("b"), txn.get("c")) == (1, 2, 3)
        # One commit state covers all shards: atomicity via the DAG.
        assert len(store.dag) == 2

    def test_branching_and_merge_work_sharded(self):
        store = PartitionedStore("A", n_shards=3)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        assert store.metrics.forks == 1
        merge = store.begin_merge(session=a)
        fork = merge.find_fork_points()[0]
        base = merge.get_for_id("x", fork)
        merge.put("x", base + sum(v - base for v in merge.get_all("x")))
        merge.commit()
        assert store.get("x") == 6

    def test_gc_prunes_every_shard(self):
        store = PartitionedStore("A", n_shards=4)
        sess = store.session("w")
        for i in range(30):
            txn = store.begin(session=sess)
            for j in range(4):
                txn.put("key%04d" % j, i)
            txn.commit()
        before = store.versions.num_records()
        sess.place_ceiling()
        stats = store.collect_garbage()
        assert stats.records_dropped > 0
        assert store.versions.num_records() < before
        txn = store.begin(session=sess)
        assert txn.get("key0000") == 29
        txn.commit()

    def test_replication_between_partitioned_datacenters(self):
        """Two sharded datacenters replicate asynchronously (§6.4)."""
        sim = Simulator()
        network = SimNetwork(sim, default_latency_ms=10)
        dc1 = PartitionedStore("dc1", n_shards=2)
        dc2 = PartitionedStore("dc2", n_shards=4)  # shard counts differ
        Replicator(dc1, network)
        Replicator(dc2, network)
        dc1.put("x", 1)
        dc1.put("y", 2)
        sim.run(until=100)
        assert dc2.get("x") == 1
        assert dc2.get("y") == 2
        t = dc2.begin()
        t.put("z", 3)
        t.commit()
        sim.run(until=200)
        assert dc1.get("z") == 3

    def test_checkpoint_recovery_with_shards(self, tmp_path):
        from repro import recover_store

        wal = str(tmp_path / "wal.log")
        store = PartitionedStore("A", n_shards=3, wal_path=wal)
        for i in range(10):
            store.put("k%d" % i, i)
        store.close()
        recovered, report = recover_store(
            "A",
            wal,
            store_factory=lambda site, **kw: PartitionedStore(site, n_shards=3, **kw),
        )
        assert report["replayed"] == 10
        assert recovered.n_shards == 3
        for i in range(10):
            assert recovered.get("k%d" % i) == i
