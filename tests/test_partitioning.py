"""Tests for the §6.4 partitioning extension."""

import random

import pytest

from repro import TardisStore
from repro.partitioning import PartitionedStore, ShardedRecordStore
from repro.partitioning.sharded import default_shard_of
from repro.replication.network import SimNetwork
from repro.replication.replicator import Replicator
from repro.sim.des import Simulator
from repro.errors import TransactionAborted


class TestShardedRecordStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedRecordStore(n_shards=0)

    def test_routing_is_stable(self):
        store = ShardedRecordStore(n_shards=4)
        for key in ("a", "b", ("tuple", 1), 42):
            assert store.shard_index(key) == store.shard_index(key)

    def test_distribution_roughly_even(self):
        counts = [0] * 8
        for i in range(4000):
            counts[default_shard_of("key%05d" % i, 8)] += 1
        assert min(counts) > 4000 / 8 * 0.6
        assert max(counts) < 4000 / 8 * 1.5

    def test_custom_shard_function(self):
        store = ShardedRecordStore(n_shards=2, shard_of=lambda k, n: 0)
        from repro.core.state_dag import StateDAG

        dag = StateDAG("A")
        state = dag.create_state([dag.root])
        store.write("x", state.id, 1)
        store.write("y", state.id, 2)
        assert store.balance() == [2, 0]


class TestPartitionedStore:
    def test_behaves_like_tardis_store(self):
        """Property: identical schedule => identical outcomes vs unsharded."""
        rng = random.Random(7)
        schedule = []
        for i in range(60):
            ops = [
                ("r" if rng.random() < 0.5 else "w", "k%d" % rng.randrange(8),
                 rng.randrange(100))
                for _ in range(rng.randint(1, 4))
            ]
            schedule.append(("s%d" % rng.randrange(3), ops))

        def run(store):
            outcomes = []
            for session_name, ops in schedule:
                txn = store.begin(session=store.session(session_name))
                seen = []
                for kind, key, value in ops:
                    if kind == "r":
                        seen.append(txn.get(key, default=None))
                    else:
                        txn.put(key, value)
                try:
                    txn.commit()
                    outcomes.append(("ok", tuple(seen)))
                except TransactionAborted:
                    outcomes.append(("abort", tuple(seen)))
            return outcomes

        plain = run(TardisStore("A"))
        sharded = run(PartitionedStore("A", n_shards=4))
        assert plain == sharded

    def test_records_spread_across_shards(self):
        store = PartitionedStore("A", n_shards=4)
        with store.begin() as txn:
            for i in range(100):
                txn.put("key%04d" % i, i)
        balance = store.shard_balance()
        assert sum(balance) == 100
        assert all(b > 0 for b in balance)
        assert sum(store.shard_accesses()) >= 100

    def test_cross_shard_transaction_atomic(self):
        store = PartitionedStore("A", n_shards=4, shard_of=lambda k, n: hash(k) % n)
        with store.begin() as txn:
            txn.put("a", 1)
            txn.put("b", 2)
            txn.put("c", 3)
        txn = store.begin()
        assert (txn.get("a"), txn.get("b"), txn.get("c")) == (1, 2, 3)
        # One commit state covers all shards: atomicity via the DAG.
        assert len(store.dag) == 2

    def test_branching_and_merge_work_sharded(self):
        store = PartitionedStore("A", n_shards=3)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        assert store.metrics.forks == 1
        merge = store.begin_merge(session=a)
        fork = merge.find_fork_points()[0]
        base = merge.get_for_id("x", fork)
        merge.put("x", base + sum(v - base for v in merge.get_all("x")))
        merge.commit()
        assert store.get("x") == 6

    def test_gc_prunes_every_shard(self):
        store = PartitionedStore("A", n_shards=4)
        sess = store.session("w")
        for i in range(30):
            txn = store.begin(session=sess)
            for j in range(4):
                txn.put("key%04d" % j, i)
            txn.commit()
        before = store.versions.num_records()
        sess.place_ceiling()
        stats = store.collect_garbage()
        assert stats.records_dropped > 0
        assert store.versions.num_records() < before
        txn = store.begin(session=sess)
        assert txn.get("key0000") == 29
        txn.commit()

    def test_replication_between_partitioned_datacenters(self):
        """Two sharded datacenters replicate asynchronously (§6.4)."""
        sim = Simulator()
        network = SimNetwork(sim, default_latency_ms=10)
        dc1 = PartitionedStore("dc1", n_shards=2)
        dc2 = PartitionedStore("dc2", n_shards=4)  # shard counts differ
        Replicator(dc1, network)
        Replicator(dc2, network)
        dc1.put("x", 1)
        dc1.put("y", 2)
        sim.run(until=100)
        assert dc2.get("x") == 1
        assert dc2.get("y") == 2
        t = dc2.begin()
        t.put("z", 3)
        t.commit()
        sim.run(until=200)
        assert dc1.get("z") == 3

    def test_checkpoint_recovery_with_shards(self, tmp_path):
        from repro import recover_store

        wal = str(tmp_path / "wal.log")
        store = PartitionedStore("A", n_shards=3, wal_path=wal)
        for i in range(10):
            store.put("k%d" % i, i)
        store.close()
        recovered, report = recover_store(
            "A",
            wal,
            store_factory=lambda site, **kw: PartitionedStore(site, n_shards=3, **kw),
        )
        assert report["replayed"] == 10
        assert recovered.n_shards == 3
        for i in range(10):
            assert recovered.get("k%d" % i) == i
