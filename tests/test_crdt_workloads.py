"""Tests for the Figure 14(b) CRDT benchmark workloads."""

import random

import pytest

from repro.crdt.workloads import CRDT_KINDS, CrdtWorkload
from repro.sim.adapters import TardisAdapter, TwoPLAdapter
from repro.workload import RunConfig, run_simulation


class TestCrdtWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrdtWorkload("Tree", "tardis")
        with pytest.raises(ValueError):
            CrdtWorkload("LWW", "mongodb")

    def test_tardis_ops_single_key(self):
        wl = CrdtWorkload("PN-C", "tardis", n_objects=2)
        rng = random.Random(0)
        for _ in range(50):
            spec = wl.next_txn(rng)
            keys = {op[1] for op in spec.ops}
            assert len(keys) == 1  # a plain field

    def test_seq_counter_reads_whole_vector(self):
        wl = CrdtWorkload("PN-C", "seq", n_objects=1, n_replicas=3, remote_ratio=0)
        rng = random.Random(0)
        read_specs = [
            s for s in (wl.next_txn(rng) for _ in range(200)) if s.read_only
        ]
        assert read_specs
        # value() sums both vectors: 2 * n_replicas reads.
        assert all(len(s.ops) == 6 for s in read_specs)

    def test_seq_counter_write_is_rmw_own_entry(self):
        wl = CrdtWorkload("PN-C", "seq", n_objects=1, remote_ratio=0, replica="r1")
        rng = random.Random(1)
        writes = [
            s for s in (wl.next_txn(rng) for _ in range(300)) if not s.read_only
        ]
        assert writes
        for spec in writes:
            assert spec.ops[0][0] == "r" and spec.ops[1][0] == "w"
            assert "r1" in spec.ops[0][1]

    def test_remote_merge_touches_full_state(self):
        wl = CrdtWorkload("PN-C", "seq", n_objects=1, n_replicas=3, remote_ratio=1.0)
        spec = wl.next_txn(random.Random(0))
        # merge = read + rewrite every per-replica entry of both vectors
        assert len([op for op in spec.ops if op[0] == "r"]) == 6
        assert len([op for op in spec.ops if op[0] == "w"]) == 6

    def test_tardis_stream_has_no_remote_merges(self):
        wl = CrdtWorkload("PN-C", "tardis", remote_ratio=0.5)
        assert wl.remote_ratio == 0.0

    def test_preload_matches_layout(self):
        seq = CrdtWorkload("Set", "seq", n_objects=2)
        assert set(seq.preload) == {
            "crdt00/adds", "crdt00/removed", "crdt01/adds", "crdt01/removed"
        }
        tardis = CrdtWorkload("Set", "tardis", n_objects=2)
        assert set(tardis.preload) == {"crdt00", "crdt01"}

    @pytest.mark.parametrize("kind", CRDT_KINDS)
    def test_all_kinds_run_on_both_systems(self, kind):
        cfg = RunConfig(n_clients=4, duration_ms=30, warmup_ms=5, cores=4,
                        maintenance_interval_ms=5)
        t = run_simulation(
            TardisAdapter(branching=True), CrdtWorkload(kind, "tardis"), cfg
        )
        s = run_simulation(TwoPLAdapter(), CrdtWorkload(kind, "seq"), cfg)
        assert t.commits > 50
        assert s.commits > 50

    def test_counter_speedup_shape(self):
        """TARDiS counters beat the sequential implementation (Fig 14b)."""
        cfg = RunConfig(n_clients=8, duration_ms=60, warmup_ms=10, cores=4,
                        maintenance_interval_ms=2)
        t = run_simulation(
            TardisAdapter(branching=True), CrdtWorkload("PN-C", "tardis"), cfg
        )
        s = run_simulation(TwoPLAdapter(), CrdtWorkload("PN-C", "seq"), cfg)
        assert t.throughput_tps > 1.5 * s.throughput_tps
