"""Wire-protocol codec tests: framing round trips, fuzz, failure modes."""

import json
import random
import struct

import pytest

from repro.errors import FrameTooLarge, ProtocolError
from repro.server.protocol import (
    ERROR_CODES,
    HEADER,
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    FrameDecoder,
    encode_frame,
    error_response,
    ok_response,
)


class TestEncodeFrame:
    def test_round_trip_simple(self):
        frame = encode_frame({"id": 1, "op": "HELLO"})
        decoder = FrameDecoder()
        decoder.feed(frame)
        assert decoder.next_frame() == {"id": 1, "op": "HELLO"}
        assert decoder.next_frame() is None
        assert decoder.pending() == 0

    def test_header_is_big_endian_length(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:]) == {"a": 1}

    def test_unicode_and_nesting_round_trip(self):
        obj = {
            "id": 7,
            "op": "WRITE",
            "key": "clé-☃",
            "value": {"nested": [1, 2.5, None, True, "日本語"]},
        }
        decoder = FrameDecoder()
        decoder.feed(encode_frame(obj))
        assert decoder.next_frame() == obj

    def test_oversized_encode_raises(self):
        with pytest.raises(FrameTooLarge) as exc_info:
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})
        assert exc_info.value.size > exc_info.value.limit

    def test_custom_max_frame(self):
        encode_frame({"k": "v"}, max_frame=64)
        with pytest.raises(FrameTooLarge):
            encode_frame({"k": "v" * 100}, max_frame=64)


class TestFrameDecoder:
    def test_byte_at_a_time_feed(self):
        obj = {"id": 3, "op": "READ", "key": "x"}
        frame = encode_frame(obj)
        decoder = FrameDecoder()
        for i, byte in enumerate(frame):
            decoder.feed(bytes([byte]))
            if i < len(frame) - 1:
                assert decoder.next_frame() is None
        assert decoder.next_frame() == obj

    def test_multiple_frames_in_one_feed(self):
        objs = [{"id": i, "op": "STATS"} for i in range(5)]
        decoder = FrameDecoder()
        decoder.feed(b"".join(encode_frame(o) for o in objs))
        assert list(decoder.frames()) == objs
        assert decoder.frames_decoded == 5

    def test_partial_header_then_rest(self):
        frame = encode_frame({"id": 9})
        decoder = FrameDecoder()
        decoder.feed(frame[:2])
        assert decoder.next_frame() is None
        decoder.feed(frame[2:])
        assert decoder.next_frame() == {"id": 9}

    def test_oversized_header_rejected_before_payload(self):
        decoder = FrameDecoder()
        decoder.feed(HEADER.pack(MAX_FRAME + 1))
        with pytest.raises(FrameTooLarge):
            decoder.next_frame()

    def test_zero_length_frame_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(HEADER.pack(0))
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_garbage_payload_rejected(self):
        payload = b"\xff\xfe not json"
        decoder = FrameDecoder()
        decoder.feed(HEADER.pack(len(payload)) + payload)
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_non_object_payload_rejected(self):
        payload = json.dumps([1, 2, 3]).encode()
        decoder = FrameDecoder()
        decoder.feed(HEADER.pack(len(payload)) + payload)
        with pytest.raises(ProtocolError):
            decoder.next_frame()

    def test_fuzz_random_chunking_round_trips(self):
        rng = random.Random(42)
        objs = [
            {"id": i, "op": "WRITE", "key": "k%d" % i, "value": "v" * rng.randrange(200)}
            for i in range(50)
        ]
        blob = b"".join(encode_frame(o) for o in objs)
        decoder = FrameDecoder()
        out = []
        position = 0
        while position < len(blob):
            step = rng.randrange(1, 37)
            decoder.feed(blob[position : position + step])
            position += step
            out.extend(decoder.frames())
        assert out == objs
        assert decoder.bytes_fed == len(blob)

    def test_fuzz_random_garbage_never_hangs(self):
        # Garbage must either decode, return None (need more data), or
        # raise a ProtocolError subclass -- never anything else.
        rng = random.Random(7)
        for _ in range(200):
            decoder = FrameDecoder()
            blob = bytes(rng.randrange(256) for _ in range(rng.randrange(64)))
            decoder.feed(blob)
            try:
                while decoder.next_frame() is not None:
                    pass
            except ProtocolError:
                pass


class TestResponseHelpers:
    def test_ok_response_shape(self):
        response = ok_response(4, value=10)
        assert response == {"id": 4, "ok": True, "value": 10}

    def test_error_response_shape(self):
        response = error_response(4, "UNKNOWN_TXN", "no txn 9")
        assert response == {
            "id": 4,
            "ok": False,
            "error": {"code": "UNKNOWN_TXN", "message": "no txn 9"},
        }

    def test_error_response_rejects_unknown_code(self):
        with pytest.raises(ValueError):
            error_response(1, "NOT_A_CODE", "nope")

    def test_catalogued_codes_and_ops(self):
        assert "HELLO" in OPS and "MERGE" in OPS
        for code in ("BAD_FRAME", "TIMEOUT", "SHUTTING_DOWN", "INTERNAL"):
            assert code in ERROR_CODES
        assert PROTOCOL_VERSION == 1
