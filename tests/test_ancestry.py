"""Tests for the ancestry index, the engine registry, and the commit pipeline.

Covers the engine-layer refactor: bitmask ``descendant_check`` must stay
equivalent to the reference graph walk under randomized fork/merge/GC
interleavings, bit positions must be retired and reused after dead-fork
scrubbing, the RecordEngine registry must accept names and instances and
reject unknowns, and WAL recovery must hold through the unified
CommitPipeline (including group-commit batching of async appends).
"""

import random

import pytest

from repro import AncestryIndex, TardisStore, recover_store
from repro.core.ancestry import popcount
from repro.core.fork_path import ForkPath, ForkPoint
from repro.core.ids import StateId
from repro.errors import TransactionAborted
from repro.storage.engine import available_engines, create_engine, register_engine
from repro.storage.hashstore import HashStore


def _sid(n):
    return StateId(n, "A")


class TestAncestryIndex:
    def test_intern_is_idempotent(self):
        index = AncestryIndex()
        p = ForkPoint(_sid(1), 0)
        bit = index.intern(p)
        assert index.intern(p) == bit
        assert len(index) == 1

    def test_mask_roundtrip(self):
        index = AncestryIndex()
        points = [ForkPoint(_sid(i), b) for i in range(1, 5) for b in (0, 1)]
        mask = index.mask_of(points)
        assert popcount(mask) == len(points)
        assert set(index.points_of(mask)) == set(points)
        assert index.path_of(mask) == ForkPath(points)
        assert index.path_of(0) is ForkPath.EMPTY

    def test_subset_matches_frozenset_semantics(self):
        index = AncestryIndex()
        rng = random.Random(7)
        universe = [ForkPoint(_sid(i), b) for i in range(1, 9) for b in (0, 1, 2)]
        for _ in range(200):
            a = rng.sample(universe, rng.randrange(len(universe)))
            b = rng.sample(universe, rng.randrange(len(universe)))
            am, bm = index.mask_of(a), index.mask_of(b)
            assert (am & bm == am) == set(a).issubset(b)

    def test_release_forks_frees_and_reuses_bits(self):
        index = AncestryIndex()
        f1, f2 = _sid(1), _sid(2)
        index.intern(ForkPoint(f1, 1))
        index.intern(ForkPoint(f1, 2))
        index.intern(ForkPoint(f2, 1))
        capacity = index.capacity
        assert index.release_forks([f1]) == 2
        assert len(index) == 1
        index.check_invariants()
        # New fork points slot into the retired positions, not new ones.
        index.intern(ForkPoint(_sid(3), 1))
        index.intern(ForkPoint(_sid(4), 1))
        assert index.capacity == capacity
        index.check_invariants()

    def test_choices_by_fork_groups_branches(self):
        index = AncestryIndex()
        mask = index.mask_of(
            [ForkPoint(_sid(1), 0), ForkPoint(_sid(1), 1), ForkPoint(_sid(2), 3)]
        )
        choices = index.choices_by_fork(mask)
        assert choices == {_sid(1): {0, 1}, _sid(2): {3}}


class TestAncestryFuzz:
    """Randomized DAGs: bitmask visibility ≡ reference graph walk."""

    @pytest.mark.parametrize("seed", range(6))
    def test_descendant_check_equivalence(self, seed):
        rng = random.Random(seed)
        store = TardisStore("A")
        sessions = [store.session("c%d" % i) for i in range(4)]
        keys = ["k%d" % i for i in range(6)]
        for step in range(60):
            action = rng.random()
            session = rng.choice(sessions)
            if action < 0.70:
                txn = store.begin(session=session)
                txn.put(rng.choice(keys), step)
                try:
                    txn.commit()
                except TransactionAborted:
                    pass
            elif action < 0.85 and len(store.dag.leaves()) > 1:
                merge = store.begin_merge(session=session)
                for key in merge.find_conflict_writes():
                    values = merge.get_all(key)
                    merge.put(key, max(values))
                try:
                    merge.commit()
                except TransactionAborted:
                    merge.abort()
            else:
                for sess in sessions:
                    if rng.random() < 0.5:
                        sess.place_ceiling()
                store.collect_garbage()
            if step % 15 == 14:
                self._assert_equivalence(store)
        self._assert_equivalence(store)
        store.dag.check_invariants()

    @staticmethod
    def _assert_equivalence(store):
        dag = store.dag
        states = list(dag.states())
        for x in states:
            for y in states:
                assert dag.descendant_check(x, y) == dag.ancestor_walk_check(
                    x, y
                ), (x.id, y.id)

    def test_gc_scrub_retires_bits(self):
        store = TardisStore("A")
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 2)
        t1.commit()
        t2.commit()
        assert len(store.dag.ancestry) > 0
        merge = store.begin_merge(session=a)
        merge.put("x", max(merge.get_all("x")))
        merge.commit()
        b.last_commit_id = a.last_commit_id  # b adopts the merged branch
        a.place_ceiling()
        b.place_ceiling()
        # Collapsing the branches into the merge makes the fork a
        # single-child state, collectable within the same cycle's
        # fixpoint sweep; a second cycle mops up any remainder.
        stats1 = store.collect_garbage()
        stats2 = store.collect_garbage()
        assert stats1.fork_entries_scrubbed + stats2.fork_entries_scrubbed > 0
        assert len(store.dag.ancestry) == 0
        for state in store.dag.states():
            assert state.path_mask == 0
        store.dag.check_invariants()


class TestEngineRegistry:
    def test_builtin_engines_available(self):
        assert {"btree", "hash"} <= set(available_engines())

    def test_create_by_name(self):
        engine = create_engine("btree", degree=4)
        engine.insert("k", 1)
        assert engine.get("k") == 1
        assert create_engine("hash").get("missing", "d") == "d"

    def test_instance_passthrough(self):
        instance = HashStore()
        assert create_engine(instance) is instance

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            create_engine("rocksdb")
        with pytest.raises(ValueError):
            create_engine(object())

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_engine("btree", lambda **_: None)

    def test_store_accepts_engine_instance(self):
        engine = HashStore()
        store = TardisStore("A", engine=engine)
        store.put("x", 41)
        assert store.get("x") == 41
        assert store.versions.records is engine

    def test_legacy_backend_alias_still_works(self):
        store = TardisStore("A", backend="hash")
        store.put("x", 1)
        assert store.get("x") == 1
        with pytest.raises(ValueError):
            TardisStore("B", backend="rocksdb")


class TestCommitPipelineRecovery:
    def _store(self, tmp_path, **kw):
        return TardisStore("A", wal_path=str(tmp_path / "wal.log"), **kw)

    def test_sync_wal_recovers_through_pipeline(self, tmp_path):
        store = self._store(tmp_path, wal_sync=True)
        sess = store.session("a")
        for i in range(5):
            store.put("k", i, session=sess)
        store.close()
        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 5
        assert recovered.get("k") == 4

    def test_group_commit_flushes_batches(self, tmp_path):
        store = self._store(tmp_path, wal_sync=False, group_commit=3)
        sess = store.session("a")
        for i in range(7):
            store.put("k", i, session=sess)
        # 7 appends with a batch of 3: two flushes landed 6 records; the
        # 7th is buffered and lost on crash.
        store.wal.drop_buffered()
        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 6
        assert recovered.get("k") == 5

    def test_async_without_group_commit_loses_everything(self, tmp_path):
        store = self._store(tmp_path, wal_sync=False)
        sess = store.session("a")
        for i in range(5):
            store.put("k", i, session=sess)
        store.wal.drop_buffered()
        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 0
        assert recovered.get("k") is None

    def test_merge_and_remote_commits_logged(self, tmp_path):
        store = self._store(tmp_path, wal_sync=True)
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", 1)
        t2.put("x", 2)
        t1.commit()
        t2.commit()
        merge = store.begin_merge(session=a)
        merge.put("x", max(merge.get_all("x")))
        merge.commit()
        # A remote graft goes through the same pipeline and is logged.
        remote_id = StateId(merge.commit_id.counter + 1, "B")
        store.apply_remote(remote_id, (merge.commit_id,), {"y": 9})
        store.close()
        recovered, report = recover_store("A", str(tmp_path / "wal.log"))
        assert report["replayed"] == 5
        assert recovered.get("x") == 2
        assert recovered.get("y") == 9
