"""Tests for garbage collection: ceilings, DAG compression, record promotion."""

import pytest

from repro import TardisStore
from repro.errors import GarbageCollectedError


@pytest.fixture
def store():
    return TardisStore("A")


def commit_chain(store, session, n, key="x"):
    for i in range(n):
        t = store.begin(session=session)
        t.put(key, i)
        t.commit()


class TestCeilings:
    def test_no_ceiling_no_collection(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 10)
        stats = store.collect_garbage()
        assert stats.states_removed == 0
        assert len(store.dag) == 11

    def test_ceiling_compresses_chain(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 10)
        sess.place_ceiling()
        stats = store.collect_garbage()
        # Everything above the last commit is neither a fork point nor a
        # leaf: the chain collapses to the single leaf state.
        assert stats.states_removed == 10
        assert len(store.dag) == 1
        assert store.dag.root.id == sess.last_commit_id

    def test_marked_states_not_selectable_as_read_state(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 5)
        sess.place_ceiling()
        store.collect_garbage()
        t = store.begin(session=sess)
        assert t.read_state.id == sess.last_commit_id
        t.commit()

    def test_pinned_read_state_survives(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 3)
        pinned = store.begin(session=store.session("reader"))
        read_id = pinned.read_state.id
        commit_chain(store, sess, 3)
        sess.place_ceiling()
        store.gc.place_ceiling("reader", sess.last_commit_id)
        stats = store.collect_garbage()
        assert store.dag.get(read_id) is not None
        # The pinned state blocks collection of its descendants' chain?
        # No: only of itself; ancestors-all-safe still gates descendants.
        pinned.commit()
        stats2 = store.collect_garbage()
        assert store.dag.get(read_id) is None
        assert stats.states_removed + stats2.states_removed >= 5

    def test_intersection_of_client_ceilings(self, store):
        a, b = store.session("a"), store.session("b")
        commit_chain(store, a, 4)
        mid = a.last_commit_id
        commit_chain(store, a, 4)
        a.place_ceiling()
        # b's ceiling lags at `mid`: states above mid are collectable,
        # states between mid and a's ceiling are not.
        store.gc.place_ceiling("b", mid)
        store.collect_garbage()
        assert store.dag.get(mid) is not None
        assert len(store.dag) == 5  # mid + 4 newer states

    def test_clear_ceiling(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 3)
        sess.place_ceiling()
        store.gc.clear_ceiling(sess.name)
        stats = store.collect_garbage()
        assert stats.states_removed == 0


class TestDagCompression:
    def test_fork_points_survive(self, store):
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.commit()
        t2.commit()
        fork_id = store.dag.fork_points_of(store.dag.leaves())[0].id
        commit_chain(store, a, 5, key="y")
        a.place_ceiling()
        store.gc.place_ceiling("b", b.last_commit_id)
        store.collect_garbage()
        assert store.dag.get(fork_id) is not None

    def test_merge_then_collect_collapses_fork(self, store):
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 1)
        t1.commit()
        t2.commit()
        m = store.begin_merge(session=a)
        m.put("x", 2)
        m.commit()
        commit_chain(store, a, 3, key="y")
        a.place_ceiling()
        store.gc.place_ceiling("b", a.last_commit_id)
        store.collect_garbage()
        # The whole pre-merge history, including the fork point whose
        # branches both collapsed into the merge, is gone.
        assert len(store.dag) == 1

    def test_promotion_redirects_reads(self, store):
        """A record written long ago stays readable after compression."""
        sess = store.session("a")
        store.put("old", "value", session=sess)
        commit_chain(store, sess, 10)
        sess.place_ceiling()
        store.collect_garbage()
        t = store.begin(session=sess)
        assert t.get("old") == "value"
        t.commit()

    def test_safety_semantics_preserved_across_gc(self, store):
        """Branch isolation survives compression."""
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", 100)
        t1.get("x")
        t2.put("x", 200)
        t2.get("x")
        t1.commit()
        t2.commit()
        commit_chain(store, a, 5, key="ya")
        commit_chain(store, b, 5, key="yb")
        a.place_ceiling()
        b.place_ceiling()
        store.collect_garbage()
        ta = store.begin(session=a)
        tb = store.begin(session=b)
        assert ta.get("x") == 100
        assert tb.get("x") == 200


class TestRecordPromotion:
    def test_stale_versions_dropped(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 20, key="x")
        assert store.versions.num_versions("x") == 20
        sess.place_ceiling()
        stats = store.collect_garbage()
        assert store.versions.num_versions("x") == 1
        assert stats.records_dropped == 19
        assert store.versions.num_records() == 1
        t = store.begin(session=sess)
        assert t.get("x") == 19
        t.commit()

    def test_fork_point_version_kept(self, store):
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        commit_chain(store, a, 3, key="other")
        a.place_ceiling()
        store.gc.place_ceiling("b", b.last_commit_id)
        store.collect_garbage()
        # The fork-point version of x (value 0) is still needed for
        # three-way merges and must survive.
        m = store.begin_merge()
        fork = m.find_fork_points()[0]
        assert m.get_for_id("x", fork) == 0
        m.abort()

    def test_live_counts_reported(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 5)
        sess.place_ceiling()
        stats = store.collect_garbage()
        assert stats.live_states == len(store.dag)
        assert stats.live_records == store.versions.num_records()

    def test_flush_promotions(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 5)
        sess.place_ceiling()
        stats = store.collect_garbage(flush_promotions=True)
        assert stats.promotions_flushed > 0
        assert store.dag.promotion_table_size == 0

    def test_flushed_promotion_lookup_fails(self, store):
        sess = store.session("a")
        first = store.put("x", 1, session=sess)
        commit_chain(store, sess, 5)
        sess.place_ceiling()
        store.collect_garbage(flush_promotions=True)
        with pytest.raises(GarbageCollectedError):
            store.dag.resolve(first)

    def test_repeated_collection_is_idempotent(self, store):
        sess = store.session("a")
        commit_chain(store, sess, 10)
        sess.place_ceiling()
        store.collect_garbage()
        stats = store.collect_garbage()
        assert stats.states_removed == 0
        assert stats.records_dropped == 0

    def test_fork_path_scrubbing(self, store):
        """Entries of fully collapsed forks disappear from live paths."""
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        t1, t2 = store.begin(session=a), store.begin(session=b)
        t1.put("x", t1.get("x") + 1)
        t2.put("x", t2.get("x") + 5)
        t1.commit()
        t2.commit()
        m = store.begin_merge(session=a)
        m.put("x", 6)
        m.commit()
        tail = store.begin(session=a)
        tail.put("y", 1)
        tail.commit()
        assert len(store.dag.resolve(a.last_commit_id).fork_path) > 0
        a.place_ceiling()
        store.gc.place_ceiling("b", a.last_commit_id)
        stats = store.collect_garbage()
        assert stats.fork_entries_scrubbed > 0
        # The surviving chain carries no fork-path entries at all.
        for state in store.dag.states():
            assert len(state.fork_path) == 0
        # Visibility still correct after the scrub.
        t = store.begin(session=a)
        assert t.get("x") == 6
        assert t.get("y") == 1
        t.commit()
        store.dag.check_invariants()

    def test_gc_under_load_interleaved(self, store):
        """Collect between batches; correctness of latest value holds."""
        sess = store.session("a")
        for batch in range(5):
            commit_chain(store, sess, 10, key="k")
            sess.place_ceiling()
            store.collect_garbage()
            t = store.begin(session=sess)
            assert t.get("k") == 9
            t.commit()
        assert len(store.dag) <= 2
