"""Unit and property tests for the B-tree record store."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import BTree


class TestBTreeBasics:
    def test_empty(self):
        bt = BTree(t=2)
        assert len(bt) == 0
        assert bt.get(1) is None
        assert bt.get(1, "d") == "d"
        assert 1 not in bt
        assert list(bt.items()) == []

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(t=1)

    def test_insert_get(self):
        bt = BTree(t=2)
        for k in range(100):
            bt.insert(k, k * 2)
        assert len(bt) == 100
        for k in range(100):
            assert bt.get(k) == k * 2
        bt.check_invariants()

    def test_insert_reverse_order(self):
        bt = BTree(t=3)
        for k in range(100, 0, -1):
            bt.insert(k, -k)
        assert list(bt.keys()) == list(range(1, 101))
        bt.check_invariants()

    def test_duplicate_insert_replaces(self):
        bt = BTree(t=2)
        bt.insert(1, "a")
        bt.insert(1, "b")
        assert len(bt) == 1
        assert bt.get(1) == "b"

    def test_duplicate_replace_deep(self):
        bt = BTree(t=2)
        for k in range(50):
            bt.insert(k, k)
        for k in range(50):
            bt.insert(k, k + 1000)
        assert len(bt) == 50
        for k in range(50):
            assert bt.get(k) == k + 1000
        bt.check_invariants()

    def test_remove_leaf_and_internal(self):
        bt = BTree(t=2)
        for k in range(30):
            bt.insert(k, k)
        for k in [0, 29, 15, 7, 22]:
            assert bt.remove(k)
            assert k not in bt
            bt.check_invariants()
        assert not bt.remove(15)
        assert len(bt) == 25

    def test_remove_everything(self):
        bt = BTree(t=2)
        keys = list(range(64))
        random.Random(5).shuffle(keys)
        for k in keys:
            bt.insert(k, k)
        random.Random(6).shuffle(keys)
        for k in keys:
            assert bt.remove(k)
            bt.check_invariants()
        assert len(bt) == 0

    def test_range_scan(self):
        bt = BTree(t=3)
        for k in range(0, 100, 2):
            bt.insert(k, k)
        assert [k for k, _ in bt.range(10, 21)] == [10, 12, 14, 16, 18, 20]
        assert [k for k, _ in bt.range(-5, 5)] == [0, 2, 4]
        assert [k for k, _ in bt.range(97, 200)] == [98]
        assert [k for k, _ in bt.range(200, 300)] == []

    def test_composite_keys(self):
        bt = BTree(t=2)
        bt.insert(("k", (2, "A")), "v2")
        bt.insert(("k", (1, "A")), "v1")
        bt.insert(("j", (9, "B")), "v9")
        assert bt.get(("k", (1, "A"))) == "v1"
        assert [k for k, _ in bt.range(("k", (0, "")), ("k", (99, "")))] == [
            ("k", (1, "A")),
            ("k", (2, "A")),
        ]

    def test_stats_counters(self):
        bt = BTree(t=2)
        for k in range(100):
            bt.insert(k, k)
        bt.stats.reset()
        bt.get(50)
        assert bt.stats.lookups == 1
        assert bt.stats.node_visits >= 1

    def test_dump_load_roundtrip(self, tmp_path):
        bt = BTree(t=4)
        for k in range(200):
            bt.insert(k, str(k))
        path = str(tmp_path / "tree.ckpt")
        assert bt.dump(path) == 200
        loaded = BTree.load(path)
        assert len(loaded) == 200
        assert list(loaded.items()) == list(bt.items())
        loaded.check_invariants()


class TestBTreeProperties:
    @given(st.lists(st.integers(-500, 500)), st.integers(2, 8))
    @settings(max_examples=100)
    def test_matches_dict(self, keys, t):
        bt = BTree(t=t)
        model = {}
        for k in keys:
            bt.insert(k, k * 3)
            model[k] = k * 3
        assert len(bt) == len(model)
        assert list(bt.items()) == sorted(model.items())
        bt.check_invariants()

    @given(
        st.lists(
            st.tuples(st.sampled_from(["ins", "del"]), st.integers(0, 60)),
            max_size=200,
        ),
        st.integers(2, 5),
    )
    @settings(max_examples=100)
    def test_mixed_ops_match_dict(self, ops, t):
        bt = BTree(t=t)
        model = {}
        for op, k in ops:
            if op == "ins":
                bt.insert(k, k)
                model[k] = k
            else:
                assert bt.remove(k) == (k in model)
                model.pop(k, None)
            bt.check_invariants()
        assert list(bt.items()) == sorted(model.items())

    @given(st.lists(st.integers(0, 300), min_size=1), st.integers(0, 300), st.integers(0, 300))
    @settings(max_examples=100)
    def test_range_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        bt = BTree(t=3)
        for k in keys:
            bt.insert(k, k)
        expected = sorted(k for k in set(keys) if lo <= k < hi)
        assert [k for k, _ in bt.range(lo, hi)] == expected
