"""Tests for the §9 speculation prototype."""

import random

import pytest

from repro import TardisStore
from repro.speculation import SpeculativeExecutor
from repro.speculation.executor import CONFIRMED, FAILED, PENDING, REEXECUTED, RemoteTxn


def increment(key, by=1):
    def program(txn):
        value = txn.get(key, default=0) + by
        txn.put(key, value)
        return value

    return program


class TestSpeculation:
    def test_speculative_result_immediate(self):
        ex = SpeculativeExecutor()
        spec = ex.submit(increment("x"))
        assert spec.status == PENDING
        assert spec.result == 1  # answered without waiting for the order
        assert ex.read_speculative("x") == 1
        assert ex.read_confirmed("x") is None  # not confirmed yet

    def test_confirmation_without_conflict(self):
        ex = SpeculativeExecutor()
        spec = ex.submit(increment("x"))
        survived = ex.deliver_confirmed([RemoteTxn(writes={"other": 5})])
        assert survived
        assert spec.status == CONFIRMED
        assert spec.executions == 1
        assert ex.read_confirmed("x") == 1
        assert ex.read_confirmed("other") == 5

    def test_empty_order_confirms(self):
        ex = SpeculativeExecutor()
        spec = ex.submit(increment("x"))
        assert ex.deliver_confirmed([])
        assert spec.status == CONFIRMED
        assert ex.read_confirmed("x") == 1

    def test_misspeculation_replays(self):
        ex = SpeculativeExecutor()
        spec = ex.submit(increment("x"))  # speculated from x=0 -> 1
        # The confirmed order contains a conflicting remote write.
        survived = ex.deliver_confirmed([RemoteTxn(writes={"x": 100})])
        assert not survived
        assert spec.status == REEXECUTED
        assert spec.executions == 2
        # The replay observed the confirmed value.
        assert spec.result == 101
        assert ex.read_confirmed("x") == 101
        assert ex.misspeculations == 1
        assert ex.reexecutions == 1

    def test_replay_preserves_ticket_order(self):
        ex = SpeculativeExecutor()
        ex.submit(increment("x"))      # 1
        ex.submit(increment("x", 10))  # 11
        ex.deliver_confirmed([RemoteTxn(writes={"x": 100})])
        assert ex.read_confirmed("x") == 111  # 100 + 1 + 10, in order

    def test_speculation_isolated_until_confirmed(self):
        """Confirmed readers never observe unconfirmed speculation."""
        ex = SpeculativeExecutor()
        ex.deliver_confirmed([RemoteTxn(writes={"x": 5})])
        ex.submit(increment("x"))
        assert ex.read_speculative("x") == 6
        assert ex.read_confirmed("x") == 5

    def test_failed_program(self):
        ex = SpeculativeExecutor()

        def broken(txn):
            txn.put("x", 1)
            raise RuntimeError("boom")

        spec = ex.submit(broken)
        assert spec.status == FAILED
        assert ex.read_speculative("x") is None

    def test_mixed_batches(self):
        ex = SpeculativeExecutor()
        rng = random.Random(3)
        expected = 0
        remote_value = 0
        for round_index in range(20):
            n = rng.randint(1, 3)
            for _ in range(n):
                ex.submit(increment("ctr"))
                expected += 1
            if rng.random() < 0.4:
                remote_value += 1
                ex.deliver_confirmed(
                    [RemoteTxn(writes={"ctr": 1000 * remote_value})]
                )
                # the pending n increments replayed over the remote write
                expected = 1000 * remote_value + n
            else:
                ex.deliver_confirmed([])
        # Every submitted increment was applied exactly once over the
        # latest confirmed base, in order.
        assert ex.read_confirmed("ctr") == expected

    def test_collect_abandoned_branches(self):
        ex = SpeculativeExecutor()
        for i in range(10):
            ex.submit(increment("x"))
            ex.deliver_confirmed([RemoteTxn(writes={"x": i * 100})])
        removed = ex.collect_abandoned()
        assert removed > 0
        # Store still serves both views.
        assert ex.read_confirmed("x") is not None

    def test_latency_advantage_accounting(self):
        """The point of speculating: results are available one batch
        earlier than confirmation; misspeculation costs a re-execution."""
        ex = SpeculativeExecutor()
        early_answers = 0
        for i in range(50):
            spec = ex.submit(increment("k%d" % (i % 5)))
            if spec.result is not None:
                early_answers += 1
            conflicting = i % 10 == 9
            ex.deliver_confirmed(
                [RemoteTxn(writes={"k%d" % (i % 5) if conflicting else "remote": i})]
            )
        assert early_answers == 50  # every client answered immediately
        assert ex.misspeculations == 5
        assert ex.reexecutions == 5