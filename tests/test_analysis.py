"""Tests for ``tardis check``: the rule engine, each rule against fixture
snippets, suppression comments, the JSON report schema, the dynamic
lockset checker (planted race), and regression tests for the real
violations the rules flagged when first run over the tree."""

import json
import textwrap
import threading
from pathlib import Path

import pytest

from repro import TardisStore
from repro.analysis import (
    ALL_RULES,
    LocksetChecker,
    check_repo,
    default_rules,
    rules_by_id,
    run_check,
)
from repro.analysis.engine import (
    REPORT_SCHEMA,
    Project,
    SourceModule,
    TextFile,
    load_project,
)
from repro.analysis.rules.generation_contract import GenerationContractRule
from repro.analysis.rules.hygiene import BareExceptRule, ImportHygieneRule
from repro.analysis.rules.lock_discipline import LockDisciplineRule
from repro.analysis.rules.metric_drift import MetricNameDriftRule
from repro.core.ids import ROOT_ID
from repro.core.state_dag import StateDAG
from repro.errors import GarbageCollectedError
from repro.obs import metrics as _met
from repro.speculation import SpeculativeExecutor
from repro.speculation.executor import FAILED
from repro.tools.cli import main as cli_main


def _module(source, relpath="src/repro/fixture.py"):
    return SourceModule(Path(relpath), relpath, textwrap.dedent(source))


def _findings(rule, source, relpath="src/repro/fixture.py"):
    return rule.check_module(_module(source, relpath))


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------


LOCK_FIXTURE = """
    import threading

    class Box:
        _GUARDED_BY = {"_items": "self._lock"}

        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put_locked(self, k, v):
            with self._lock:
                self._items[k] = v

        def put_unlocked(self, k, v):
            self._items[k] = v

        def pop_unlocked(self, k):
            return self._items.pop(k, None)

        def clear_nested(self):
            with self._lock:
                with self._other:
                    self._items.clear()
    """


class TestLockDiscipline:
    def test_unlocked_write_and_mutator_flagged(self):
        findings = _findings(LockDisciplineRule(), LOCK_FIXTURE)
        messages = [f.message for f in findings]
        assert len(findings) == 2
        assert any("put_unlocked" not in m and "assignment to" in m for m in messages)
        assert any("pop()" in m for m in messages)
        assert all(f.rule == "lock-discipline" for f in findings)
        assert all(f.severity == "error" for f in findings)

    def test_locked_write_and_init_are_clean(self):
        # Drop the two offending methods: everything left is disciplined
        # (__init__ writes are exempt, nested with keeps the lock held).
        clean = LOCK_FIXTURE.replace("put_unlocked", "put_locked2").replace(
            "self._items[k] = v\n", "pass\n", 1
        )
        src = textwrap.dedent(LOCK_FIXTURE)
        src = src.replace(
            "    def put_unlocked(self, k, v):\n        self._items[k] = v\n", ""
        )
        src = src.replace(
            "    def pop_unlocked(self, k):\n"
            "        return self._items.pop(k, None)\n",
            "",
        )
        rule = LockDisciplineRule()
        assert rule.check_module(SourceModule(Path("f.py"), "f.py", src)) == []

    def test_external_guard_not_statically_enforced(self):
        src = """
        class Ext:
            _GUARDED_BY = {"accesses": "external:TardisStore._lock"}

            def __init__(self):
                self.accesses = 0

            def bump(self):
                self.accesses += 1
        """
        assert _findings(LockDisciplineRule(), src) == []

    def test_undeclared_lock_is_an_error(self):
        src = """
        class NoLock:
            _GUARDED_BY = {"_x": "self._lock"}

            def __init__(self):
                self._x = 0
        """
        findings = _findings(LockDisciplineRule(), src)
        assert len(findings) == 1
        assert "never assigns self._lock" in findings[0].message


# ---------------------------------------------------------------------------
# generation-contract
# ---------------------------------------------------------------------------


GEN_FIXTURE = """
    class StateDAG:
        def __init__(self):
            self._states = {}
            self.generation = 0
            self.destructive_gen = 0

        def bump_generation(self):
            self.generation += 1

        def mark_destructive(self):
            self.generation += 1
            self.destructive_gen = self.generation

        def good_add(self, sid, state):
            self._states[sid] = state
            self.bump_generation()

        def good_guard_clause(self, sid, state):
            if sid is None:
                return None
            self._states[sid] = state
            self.mark_destructive()
            return state

        def bad_add(self, sid, state):
            self._states[sid] = state

        def bad_early_return(self, sid, state):
            self._states[sid] = state
            if sid in self._states:
                return None
            self.bump_generation()
            return state
    """


class TestGenerationContract:
    def test_missing_bump_flagged_on_each_exit_path(self):
        findings = _findings(GenerationContractRule(), GEN_FIXTURE)
        assert len(findings) == 2
        assert {f.rule for f in findings} == {"generation-contract"}
        assert any("bad_add" in f.message for f in findings)
        assert any(
            "bad_early_return" in f.message and "return" in f.message
            for f in findings
        )

    def test_only_statedag_classes_are_checked(self):
        src = textwrap.dedent(GEN_FIXTURE).replace(
            "class StateDAG:", "class SomethingElse:"
        )
        rule = GenerationContractRule()
        assert rule.check_module(SourceModule(Path("f.py"), "f.py", src)) == []

    def test_path_mask_store_counts_as_mutation(self):
        src = """
        class StateDAG:
            def rewrite(self, state):
                state.path_mask = 0
        """
        findings = _findings(GenerationContractRule(), src)
        assert len(findings) == 1
        assert ".path_mask" in findings[0].message


# ---------------------------------------------------------------------------
# metric-name-drift
# ---------------------------------------------------------------------------

# Fixture sources use implicit string concatenation for the deliberately
# bogus names so that scanning THIS test module (which is itself a
# consumer corpus for the real run) never sees the malformed token.

CATALOG_FIXTURE = """
    METRIC_NAMES = {
        "tardis_gc_cycle_total": "GC cycles run",
        "tardis_gc_live_records": "records alive after a GC cycle",
    }
    SERIES_NAMES = {
        "tardis_branch_count": "current leaf count",
    }
    """

PRODUCER_OK = """
    def tick(m, s):
        m.inc("tardis_gc_cycle_total")
        m.set_gauge("tardis_gc_live_records", 3)
        s._feed("tardis_branch_count@siteA", 1)
    """


def _drift_project(producer_src, docs_text=None, catalog_src=CATALOG_FIXTURE):
    modules = [
        _module(catalog_src, "src/repro/obs/metrics.py"),
        _module(producer_src, "src/repro/core/hot.py"),
    ]
    docs = []
    if docs_text is not None:
        docs.append(TextFile(Path("docs/x.md"), "docs/x.md", docs_text))
    return Project(root=Path("."), modules=modules, docs=docs)


class TestMetricNameDrift:
    def test_consistent_project_is_clean(self):
        rule = MetricNameDriftRule()
        assert rule.check_project(_drift_project(PRODUCER_OK)) == []

    def test_unknown_producer_name_flagged(self):
        drift = PRODUCER_OK + (
            '\n    def typo(m):\n        m.inc("tardis_" "gc_cycl_total")\n'
        )
        findings = MetricNameDriftRule().check_project(_drift_project(drift))
        assert len(findings) == 1
        assert "not in the catalogue" in findings[0].message
        assert findings[0].file == "src/repro/core/hot.py"

    def test_stale_catalogue_entry_flagged(self):
        # Producer never records the gauge: liveness check fires.
        thin = PRODUCER_OK.replace(
            '        m.set_gauge("tardis_gc_live_records", 3)\n', ""
        )
        findings = MetricNameDriftRule().check_project(_drift_project(thin))
        assert len(findings) == 1
        assert "never recorded" in findings[0].message
        assert findings[0].file == "src/repro/obs/metrics.py"

    def test_doc_reference_must_resolve(self):
        bad_doc = "The collector bumps " + "tardis_gc_" + "cycl_total each run.\n"
        findings = MetricNameDriftRule().check_project(
            _drift_project(PRODUCER_OK, docs_text=bad_doc)
        )
        assert len(findings) == 1
        assert findings[0].file == "docs/x.md"
        assert findings[0].line == 1

    def test_prefix_and_series_suffix_references_resolve(self):
        # Underscore-boundary prefixes (dashboard filters) and @site
        # series instances are legitimate consumer spellings.
        good_doc = "Watch tardis_gc and tardis_branch_count@siteB for drift.\n"
        rule = MetricNameDriftRule()
        assert rule.check_project(_drift_project(PRODUCER_OK, docs_text=good_doc)) == []

    def test_missing_catalogue_is_itself_a_finding(self):
        project = _drift_project(PRODUCER_OK, catalog_src="X = 1\n")
        findings = MetricNameDriftRule().check_project(project)
        assert len(findings) == 1
        assert "catalogue not found" in findings[0].message


# ---------------------------------------------------------------------------
# import-hygiene and bare-except
# ---------------------------------------------------------------------------


class TestHygieneRules:
    def test_duplicate_and_function_local_imports_flagged(self):
        src = """
        import os
        import os

        def f():
            import json
            return json

        def probe():
            try:
                import numpy
            except ImportError:
                numpy = None
            return numpy
        """
        findings = _findings(ImportHygieneRule(), src)
        assert len(findings) == 2
        assert all(f.severity == "warning" for f in findings)
        assert any("already imported" in f.message for f in findings)
        assert any("inside f()" in f.message for f in findings)

    def test_from_imports_of_distinct_names_are_not_duplicates(self):
        src = """
        from os import path
        from os import sep
        """
        assert _findings(ImportHygieneRule(), src) == []

    def test_broad_handlers_without_reraise_flagged(self):
        src = """
        def f():
            try:
                return 1
            except Exception:
                pass

        def g():
            try:
                return 1
            except (ValueError, Exception):
                pass

        def h():
            try:
                return 1
            except:
                pass

        def cleanup_and_propagate():
            try:
                return 1
            except Exception:
                raise

        def typed():
            try:
                return 1
            except ValueError:
                pass
        """
        findings = _findings(BareExceptRule(), src)
        assert len(findings) == 3
        assert all(f.rule == "bare-except" for f in findings)
        assert any("bare except" in f.message for f in findings)


# ---------------------------------------------------------------------------
# engine: suppressions, report schema, CLI
# ---------------------------------------------------------------------------


BROAD_CATCH = """
    def f():
        try:
            return 1
        except Exception:{comment}
            pass
    """


def _run_bare_except(comment="", header=""):
    src = header + textwrap.dedent(BROAD_CATCH.format(comment=comment))
    project = Project(root=Path("."), modules=[SourceModule(Path("m.py"), "m.py", src)])
    return run_check(project, [BareExceptRule()])


class TestSuppressions:
    def test_line_suppression_drops_and_counts(self):
        report = _run_bare_except(comment="  # tardis: ignore[bare-except]")
        assert report.findings == []
        assert report.suppressed == 1
        assert report.ok and report.exit_code == 0

    def test_wildcard_line_suppression(self):
        report = _run_bare_except(comment="  # tardis: ignore[*]")
        assert report.findings == [] and report.suppressed == 1

    def test_file_suppression(self):
        report = _run_bare_except(header="# tardis: ignore-file[bare-except]\n")
        assert report.findings == [] and report.suppressed == 1

    def test_unrelated_suppression_does_not_apply(self):
        report = _run_bare_except(comment="  # tardis: ignore[lock-discipline]")
        assert len(report.findings) == 1
        assert report.suppressed == 0
        assert report.exit_code == 1


class TestReport:
    def test_json_schema(self):
        report = _run_bare_except()
        data = json.loads(report.to_json())
        assert data["schema_version"] == REPORT_SCHEMA == 1
        assert data["ok"] is False
        assert data["files_checked"] == 1
        assert data["rules"] == ["bare-except"]
        assert data["suppressed"] == 0
        assert data["counts"] == {"error": 1, "warning": 0}
        (finding,) = data["findings"]
        assert set(finding) == {"file", "line", "rule", "severity", "message", "hint"}
        assert finding["file"] == "m.py"
        assert finding["rule"] == "bare-except"

    def test_text_format_has_summary_line(self):
        report = _run_bare_except()
        text = report.format()
        assert "m.py:" in text
        assert "1 finding(s) (1 error, 0 warning)" in text

    def test_rules_by_id(self):
        rules = rules_by_id(["bare-except", "lock-discipline"])
        assert [r.id for r in rules] == ["bare-except", "lock-discipline"]
        with pytest.raises(KeyError):
            rules_by_id(["no-such-rule"])
        assert {r.id for r in default_rules()} == {cls.id for cls in ALL_RULES}


class TestCli:
    def _write_pkg(self, tmp_path, body):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "mod.py").write_text(textwrap.dedent(body))
        return pkg

    def test_check_clean_tree_exits_zero(self, tmp_path, capsys):
        pkg = self._write_pkg(tmp_path, "def f():\n    return 1\n")
        rc = cli_main(["check", "--root", str(pkg), "--format=json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 0 and data["ok"] is True and data["files_checked"] == 1

    def test_check_finding_exits_nonzero(self, tmp_path, capsys):
        pkg = self._write_pkg(
            tmp_path,
            """
            def f():
                try:
                    return 1
                except Exception:
                    pass
            """,
        )
        rc = cli_main(["check", "--root", str(pkg), "--format=json"])
        data = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert data["counts"]["error"] == 1

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        rc = cli_main(["check", "--rules", "no-such-rule"])
        assert rc == 2

    def test_list_rules(self, capsys):
        assert cli_main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for cls in ALL_RULES:
            assert cls.id in out


def test_repo_is_clean():
    """The acceptance gate: the shipped tree passes its own linter."""
    report = check_repo()
    assert report.ok, "\n" + report.format()
    assert report.files_checked > 40


def test_load_project_locates_tests_and_docs():
    src_root = Path(_met.__file__).resolve().parent.parent
    project = load_project(src_root)
    assert project.module("obs/metrics.py") is not None
    assert any("test_analysis" in m.relpath for m in project.test_modules)
    assert any(d.relpath.endswith(".md") for d in project.docs)


# ---------------------------------------------------------------------------
# dynamic lockset checker
# ---------------------------------------------------------------------------


class _Account:
    def __init__(self):
        self.balance = 0


def _run_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join()


@pytest.mark.lockset
class TestLocksetChecker:
    def test_planted_race_is_reported(self):
        checker = LocksetChecker()
        lock = checker.wrap_lock(threading.Lock(), name="acct._lock")
        acct = checker.watch(_Account(), "balance", label="Account")

        def disciplined():
            for _ in range(3):
                with lock:
                    acct.balance += 1

        def racy():
            acct.balance = 99  # no lock held: the planted race

        _run_thread(disciplined)
        _run_thread(racy)
        races = checker.races
        assert len(races) == 1
        assert races[0].rule == "lockset-race"
        assert "Account.balance" in races[0].message
        # one report per field, even on further racy access
        _run_thread(racy)
        assert len(checker.races) == 1

    def test_consistent_locking_is_clean(self):
        checker = LocksetChecker()
        lock = checker.wrap_lock(threading.RLock(), name="acct._lock")
        acct = checker.watch(_Account(), "balance")

        def disciplined():
            for _ in range(3):
                with lock:
                    with lock:  # reentrant: still held after inner exit
                        pass
                    acct.balance += 1

        for _ in range(3):
            _run_thread(disciplined)
        assert checker.races == []

    def test_single_threaded_access_never_races(self):
        checker = LocksetChecker()
        acct = checker.watch(_Account(), "balance")
        for _ in range(10):
            acct.balance += 1  # EXCLUSIVE state: first thread, no lock needed
        assert checker.races == []

    def test_install_intercepts_lock_creation(self):
        checker = LocksetChecker()
        real_lock = threading.Lock
        with checker.install():
            inner = threading.Lock()
            assert hasattr(inner, "_checker")
            with inner:
                assert checker.held_by_current_thread() == {"lock-1"}
            assert checker.held_by_current_thread() == set()
        assert threading.Lock is real_lock

    def test_counters_reach_the_registry(self):
        registry = _met.MetricsRegistry()
        checker = LocksetChecker(registry=registry)
        acct = checker.watch(_Account(), "balance")
        _run_thread(lambda: setattr(acct, "balance", 1))
        _run_thread(lambda: setattr(acct, "balance", 2))
        assert registry.counter_value("tardis_lockset_tracked_total") == 1
        assert registry.counter_value("tardis_lockset_races_total") == 1


# ---------------------------------------------------------------------------
# regressions: the real violations `tardis check` flagged, now fixed
# ---------------------------------------------------------------------------


class _ProbeLock:
    """Context manager standing in for a threading lock, counting entries."""

    def __init__(self, inner=None):
        self.inner = inner
        self.entries = 0

    def __enter__(self):
        self.entries += 1
        if self.inner is not None:
            self.inner.acquire()
        return self

    def __exit__(self, *exc):
        if self.inner is not None:
            self.inner.release()
        return False


class TestFlaggedViolationRegressions:
    def test_gauge_set_acquires_its_lock(self):
        # lock-discipline: Gauge.set wrote _value without self._lock.
        gauge = _met.Gauge("tardis_gc_live_states")
        probe = _ProbeLock()
        gauge._lock = probe
        gauge.set(4.0)
        assert probe.entries == 1
        assert gauge.value == 4.0

    def test_close_session_holds_store_lock(self):
        # lock-discipline: TardisStore.close_session popped _sessions
        # outside the store lock.
        store = TardisStore("A")
        store.session("alice")
        probe = _ProbeLock(inner=store._lock)
        store._lock = probe
        store.close_session("alice")
        assert probe.entries >= 1
        assert "alice" not in store._sessions

    def test_forget_promotions_is_destructive(self):
        # generation-contract: forget_promotions dropped entries without
        # moving destructive_gen, leaving stale resolve() cache entries.
        dag = StateDAG("A")
        dag._promotions[("ghost", "A")] = ROOT_ID
        before = dag.destructive_gen
        dag.forget_promotions([("ghost", "A")])
        assert dag.destructive_gen > before
        assert dag.promotion_table_size == 0
        # dropping nothing must NOT invalidate caches
        gen = dag.generation
        dag.forget_promotions([("never-existed", "A")])
        assert dag.generation == gen

    def test_retwis_merge_skips_collected_anchor_only(self):
        # bare-except: the session re-anchor loop swallowed *every*
        # exception; now only GarbageCollectedError means "skip".
        from repro.apps.retwis import RetwisApp, timeline_key

        app = RetwisApp(TardisStore("A"))
        for user in ("alice", "bruno", "carla"):
            app.create_account(user)
        store = app.store

        def fork(a, b):
            # Conflicting writes to the same key from one snapshot: the
            # second commit cannot ripple and must fork a branch.
            t1 = store.begin(session=store.session(a))
            t2 = store.begin(session=store.session(b))
            for txn, pid in ((t1, (100, a)), (t2, (101, b))):
                tl = txn.get(timeline_key("carla"))
                txn.put(timeline_key("carla"), (pid,) + tuple(tl))
            t1.commit()
            t2.commit()

        fork("retwis:alice", "retwis:bruno")
        assert len(store.dag.leaves()) == 2
        doomed = store.session("retwis:alice")
        doomed.last_commit_state = lambda: (_ for _ in ()).throw(
            GarbageCollectedError(("gone", "A"))
        )
        app.merge_branches()  # collected anchor is skipped, not fatal

        boom = RuntimeError("must propagate")

        def explode():
            raise boom

        # Re-fork so another merge has two branches to reconcile.
        fork("retwis:alice2", "retwis:bruno2")
        store.session("retwis:bruno").last_commit_state = explode
        with pytest.raises(RuntimeError):
            app.merge_branches()

    def test_speculation_failure_keeps_the_exception(self):
        # bare-except: the executor swallowed program exceptions; it
        # still fails the speculation future-style but keeps the cause.
        ex = SpeculativeExecutor()
        boom = ValueError("broken program")

        def broken(txn):
            txn.put("x", 1)
            raise boom

        spec = ex.submit(broken)
        assert spec.status == FAILED
        assert spec.error is boom

    def test_fixed_modules_stay_clean_under_their_rules(self):
        # Pin the fixes at the source level: re-linting the touched
        # modules (with real suppressions honoured) yields no findings.
        src_root = Path(_met.__file__).resolve().parent.parent
        project = load_project(src_root)
        fixed = [
            "obs/metrics.py",
            "core/store.py",
            "core/state_dag.py",
            "sim/adapters.py",
            "apps/retwis.py",
            "apps/shopping.py",
            "speculation/executor.py",
        ]
        modules = [project.module(suffix) for suffix in fixed]
        assert all(m is not None for m in modules)
        subset = Project(root=project.root, modules=modules)
        rules = [LockDisciplineRule(), GenerationContractRule(), BareExceptRule()]
        report = run_check(subset, rules)
        assert report.ok, "\n" + report.format()
        assert report.suppressed >= 2  # the justified executor/state_dag ones
