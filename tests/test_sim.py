"""Tests for the discrete-event simulator, cost model, and adapters."""

import pytest

from repro.sim.des import Resource, Simulator
from repro.sim.costs import CostModel
from repro.sim.adapters import OCCAdapter, TardisAdapter, TwoPLAdapter


class TestSimulator:
    def test_event_ordering(self):
        sim = Simulator()
        fired = []
        sim.schedule(5, lambda: fired.append("b"))
        sim.schedule(1, lambda: fired.append("a"))
        sim.schedule(9, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9

    def test_simultaneous_events_fifo(self):
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: fired.append(i))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(10, lambda: fired.append(10))
        sim.run(until=5)
        assert fired == [1]
        assert sim.now == 5
        sim.run()
        assert fired == [1, 10]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(2, lambda: times.append(sim.now))

        sim.schedule(1, first)
        sim.run()
        assert times == [1, 3]


class TestResource:
    def test_capacity_respected(self):
        sim = Simulator()
        res = Resource(sim, 2)
        done = []
        for i in range(4):
            res.execute(1.0, lambda i=i: done.append((i, sim.now)))
        sim.run()
        # Two run at a time: finish at 1, 1, 2, 2.
        assert [t for _i, t in done] == [1.0, 1.0, 2.0, 2.0]

    def test_fifo_no_starvation(self):
        """A continuation that immediately resubmits must not starve the queue."""
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def greedy(n):
            order.append(("g", n))
            if n < 3:
                res.execute(1.0, lambda: greedy(n + 1))

        res.execute(1.0, lambda: greedy(0))
        res.execute(1.0, lambda: order.append(("other", 0)))
        sim.run()
        # "other" was queued second and must run before greedy's resubmission.
        assert order.index(("other", 0)) == 1

    def test_busy_time_accumulates(self):
        sim = Simulator()
        res = Resource(sim, 4)
        for _ in range(10):
            res.execute(2.0, lambda: None)
        sim.run()
        assert res.busy_time == pytest.approx(20.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), 0)


class TestCostModel:
    def test_defaults_positive(self):
        costs = CostModel()
        for name in costs.__dataclass_fields__:
            assert getattr(costs, name) > 0, name

    def test_scaled(self):
        costs = CostModel()
        double = costs.scaled(2.0)
        assert double.btree_access == pytest.approx(2 * costs.btree_access)
        assert double.lock_acquire == pytest.approx(2 * costs.lock_acquire)


class TestAdapters:
    def run_one_txn(self, adapter):
        adapter.preload({"a": 1, "b": 2})
        txn, cost = adapter.begin("c1")
        assert cost > 0
        r = adapter.read(txn, "a")
        assert r.status == "ok" and r.value == 1
        w = adapter.write(txn, "a", 10)
        assert w.status == "ok"
        pre = adapter.commit_request(txn)
        c = adapter.commit(txn)
        assert c.status == "ok"
        txn2, _ = adapter.begin("c1")
        assert adapter.read(txn2, "a").value == 10
        assert adapter.read(txn2, "missing").value is None
        return adapter

    def test_tardis_adapter_roundtrip(self):
        self.run_one_txn(TardisAdapter())

    def test_twopl_adapter_roundtrip(self):
        self.run_one_txn(TwoPLAdapter())

    def test_occ_adapter_roundtrip(self):
        self.run_one_txn(OCCAdapter())

    def test_tardis_nonbranching_aborts(self):
        adapter = TardisAdapter(branching=False)
        adapter.preload({"x": 0})
        t1, _ = adapter.begin("a")
        t2, _ = adapter.begin("b")
        adapter.read(t1, "x")
        adapter.read(t2, "x")
        adapter.write(t1, "x", 1)
        adapter.write(t2, "x", 2)
        assert adapter.commit(t1).status == "ok"
        assert adapter.commit(t2).status == "abort"

    def test_tardis_branching_never_aborts(self):
        adapter = TardisAdapter(branching=True)
        adapter.preload({"x": 0})
        t1, _ = adapter.begin("a")
        t2, _ = adapter.begin("b")
        adapter.read(t1, "x")
        adapter.read(t2, "x")
        adapter.write(t1, "x", 1)
        adapter.write(t2, "x", 2)
        assert adapter.commit(t1).status == "ok"
        assert adapter.commit(t2).status == "ok"
        assert adapter.stats()["forks"] == 1

    def test_tardis_maintenance_merges_and_collects(self):
        adapter = TardisAdapter(branching=True)
        adapter.preload({"x": 0})
        txns = [adapter.begin(client)[0] for client in ("a", "b")]
        for txn, client in zip(txns, ("a", "b")):
            adapter.read(txn, "x")
            adapter.write(txn, "x", client)
        for txn in txns:
            adapter.commit(txn)
        assert len(adapter.store.dag.leaves()) == 2
        cost = adapter.maintenance()
        assert cost > 0
        assert len(adapter.store.dag.leaves()) == 1
        assert adapter.merges_run == 1

    def test_twopl_wait_and_wakeup_tokens(self):
        adapter = TwoPLAdapter()
        adapter.preload({"x": 0})
        t1, _ = adapter.begin("a")
        t2, _ = adapter.begin("b")
        assert adapter.write(t1, "x", 1).status == "ok"
        waiting = adapter.read(t2, "x")
        assert waiting.status == "wait"
        assert waiting.serial > 0
        done = adapter.commit(t1)
        assert done.status == "ok"
        assert waiting.token in done.wakeups

    def test_occ_validation_abort_via_adapter(self):
        adapter = OCCAdapter()
        adapter.preload({"x": 0})
        t1, _ = adapter.begin("a")
        adapter.read(t1, "x")
        t2, _ = adapter.begin("b")
        adapter.write(t2, "x", 5)
        adapter.commit(t2)
        adapter.write(t1, "y", 1)
        result = adapter.commit(t1)
        assert result.status == "abort"

    def test_pressure_default_and_configured(self):
        plain = TardisAdapter()
        assert plain.pressure() == 1.0
        squeezed = TardisAdapter(
            pressure_per_item=0.001, pressure_threshold=0, gc_enabled=False
        )
        squeezed.preload({"k%d" % i: 0 for i in range(10)})
        assert squeezed.pressure() > 1.0
