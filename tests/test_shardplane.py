"""Tests for the process-parallel shard plane (workers + cross-shard commits).

Covers the ``proc-sharded`` record store end to end: drop-in engine
selection through ``TardisStore``, scatter/gather batched reads, the
prepare/install cross-shard commit protocol (including typed aborts on
a killed worker), oracle equivalence against the flat store under a
branching/merging/GC workload, and worker lifecycle (clean close, no
leaks).

Worker processes use the ``spawn`` start method, so each store pays
real startup cost: tests share stores where possible and keep worker
counts small.
"""

import random

import pytest

from repro import TardisStore
from repro.errors import (
    CrossShardAbort,
    GarbageCollectedError,
    ShardUnavailableError,
    TransactionAborted,
)
from repro.obs import metrics as _met
from repro.partitioning import PartitionedStore, ProcShardedRecordStore


@pytest.fixture
def proc_store():
    store = TardisStore("A", engine="proc-sharded", shards=4, shard_workers=2)
    yield store
    store.close()


class TestProcShardedBasics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProcShardedRecordStore(n_shards=2, n_workers=4)  # workers > shards
        with pytest.raises(ValueError):
            ProcShardedRecordStore(n_shards=0)

    def test_engine_spec_is_a_drop_in(self, proc_store):
        assert isinstance(proc_store.versions, ProcShardedRecordStore)
        assert proc_store.versions.n_workers == 2
        assert proc_store.versions.workers_alive() == 2

    def test_round_trip_and_delete(self, proc_store):
        proc_store.put("x", {"nested": [1, 2]})
        assert proc_store.get("x") == {"nested": [1, 2]}
        txn = proc_store.begin()
        txn.delete("x")
        txn.commit()
        assert proc_store.get("x", default="gone") == "gone"

    def test_get_many_parity_with_get(self, proc_store):
        keys = ["key%03d" % i for i in range(40)]
        txn = proc_store.begin()
        for i, key in enumerate(keys):
            txn.put(key, i)
        txn.commit()
        txn = proc_store.begin(read_only=True)
        batched = txn.get_many(keys + ["missing"], default=None)
        singles = [txn.get(k, default=None) for k in keys + ["missing"]]
        txn.commit()
        assert batched == singles
        assert batched[:-1] == list(range(40))
        assert batched[-1] is None

    def test_records_spread_across_workers(self, proc_store):
        txn = proc_store.begin()
        for i in range(64):
            txn.put("key%03d" % i, i)
        txn.commit()
        balance = proc_store.versions.balance()
        assert sum(balance) == 64
        assert sum(1 for b in balance if b > 0) > 1

    def test_cross_shard_commit_metric(self):
        registry = _met.MetricsRegistry(enabled=True)
        previous = _met.set_default_registry(registry)
        store = TardisStore(
            "A", engine="proc-sharded", shards=4, shard_workers=2
        )
        try:
            txn = store.begin()
            for i in range(16):  # certainly spans shards
                txn.put("key%03d" % i, i)
            txn.commit()
            assert registry.counter_value("tardis_commit_cross_shard_total") >= 1
        finally:
            store.close()
            _met.set_default_registry(previous)

    def test_close_is_idempotent_and_leak_free(self):
        store = TardisStore(
            "A", engine="proc-sharded", shards=4, shard_workers=2
        )
        store.put("x", 1)
        store.close()
        assert store.leaked_workers == 0
        store.close()  # second close is a no-op
        assert store.leaked_workers == 0


class TestWorkerFailure:
    def test_commit_to_dead_worker_aborts_typed(self):
        store = TardisStore(
            "A", engine="proc-sharded", shards=4, shard_workers=2
        )
        try:
            store.put("seed", 0)
            states = len(store.dag)
            aborts = store.metrics.aborts
            store.versions.kill_worker(0)
            txn = store.begin()
            for i in range(16):  # hits shards on both workers
                txn.put("key%03d" % i, i)
            with pytest.raises(CrossShardAbort) as excinfo:
                txn.commit()
            # Typed: retry loops written for TransactionAborted still work.
            assert isinstance(excinfo.value, TransactionAborted)
            # Clean abort: no committed-looking state with lost writes.
            assert len(store.dag) == states
            assert store.metrics.aborts == aborts + 1
        finally:
            store.close()

    def test_read_from_dead_worker_raises_shard_unavailable(self):
        store = TardisStore(
            "A", engine="proc-sharded", shards=2, shard_workers=2
        )
        try:
            txn = store.begin()
            for i in range(16):
                txn.put("key%03d" % i, i)
            txn.commit()
            store.versions.kill_worker(1)
            txn = store.begin(read_only=True)
            with pytest.raises(ShardUnavailableError):
                txn.get_many(["key%03d" % i for i in range(16)])
        finally:
            store.close()

    def test_shard_abort_metric(self):
        registry = _met.MetricsRegistry(enabled=True)
        previous = _met.set_default_registry(registry)
        store = TardisStore(
            "A", engine="proc-sharded", shards=2, shard_workers=2
        )
        try:
            store.versions.kill_worker(0)
            txn = store.begin()
            for i in range(8):
                txn.put("key%03d" % i, i)
            with pytest.raises(CrossShardAbort):
                txn.commit()
            assert registry.counter_value("tardis_commit_shard_abort_total") == 1
        finally:
            store.close()
            _met.set_default_registry(previous)


class TestOracleEquivalence:
    """Sharded-with-workers must be observably identical to the flat store."""

    @staticmethod
    def _run_schedule(store, seed):
        obs = []
        sessions = [store.session("c%d" % i) for i in range(3)]
        rng = random.Random(seed)
        keyspace = ["k%02d" % i for i in range(24)]
        for _step in range(140):
            roll = rng.random()
            sess = sessions[rng.randrange(len(sessions))]
            try:
                if roll < 0.45:
                    txn = store.begin(session=sess)
                    for _ in range(rng.randrange(1, 5)):
                        txn.put(keyspace[rng.randrange(24)], rng.randrange(1000))
                    obs.append(("commit", repr(txn.commit())))
                elif roll < 0.65:
                    txn = store.begin(session=sess, read_only=True)
                    obs.append(
                        (
                            "read",
                            tuple(
                                txn.get(keyspace[rng.randrange(24)], default=None)
                                for _ in range(4)
                            ),
                        )
                    )
                    txn.commit()
                elif roll < 0.75:
                    txn = store.begin(session=sess, read_only=True)
                    obs.append(
                        ("read_many", tuple(txn.get_many(keyspace, default=None)))
                    )
                    txn.commit()
                elif roll < 0.85:
                    merge = store.begin_merge(session=sess)
                    for key in merge.find_conflict_writes():
                        values = [v for _sid, v in merge.get_all(key)]
                        numeric = [v for v in values if v is not None]
                        merge.put(key, max(numeric) if numeric else None)
                    obs.append(("merge", repr(merge.commit())))
                elif roll < 0.92:
                    txn = store.begin(session=sess)
                    txn.delete(keyspace[rng.randrange(24)])
                    obs.append(("delete", repr(txn.commit())))
                else:
                    stats = store.collect_garbage()
                    obs.append(
                        ("gc", stats.states_removed, stats.records_dropped)
                    )
            except TransactionAborted as exc:
                obs.append(("abort", type(exc).__name__))
            except GarbageCollectedError:
                obs.append(("gcerror",))
        txn = store.begin(read_only=True)
        obs.append(("snapshot", tuple(txn.get_many(keyspace, default=None))))
        txn.commit()
        obs.append(("states", len(store.dag)))
        return obs

    def test_bit_identical_observables(self):
        flat = TardisStore("site")
        proc = PartitionedStore("site", n_shards=4, shard_workers=2)
        try:
            expected = self._run_schedule(flat, seed=42)
            actual = self._run_schedule(proc, seed=42)
            assert actual == expected
        finally:
            flat.close()
            proc.close()
            assert proc.leaked_workers == 0

    def test_in_process_sharded_matches_too(self):
        flat = TardisStore("site")
        sharded = TardisStore("site", engine="sharded", shards=4)
        try:
            assert self._run_schedule(sharded, seed=9) == self._run_schedule(
                flat, seed=9
            )
        finally:
            flat.close()
            sharded.close()
