"""Isolation-level verification on randomly generated histories.

The paper's central correctness claims are checked here by *replaying*
committed histories rather than trusting the implementation:

* **Inter-branch isolation / per-branch serializability** (§3, §5.1):
  for every root-to-leaf branch of the final State DAG, replaying the
  committing transactions in branch order against a plain dict must
  reproduce exactly the values every transaction actually read.
* **Read-my-writes** under the Ancestor begin constraint (§5.1).
* **Snapshot isolation within a branch** (§5.1): no lost updates among
  the transactions of one branch under the SI end constraint.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AncestorConstraint,
    SerializabilityConstraint,
    SnapshotIsolationConstraint,
    TardisStore,
)
from repro.errors import TransactionAborted


class RecordedTxn:
    """What one committed transaction observed and wrote."""

    def __init__(self, commit_id, reads, writes):
        self.commit_id = commit_id
        self.reads = reads      # {key: value-it-saw}
        self.writes = writes    # {key: value-it-wrote}


def run_random_history(
    seed,
    n_sessions=4,
    n_txns=60,
    n_keys=6,
    end_constraint=None,
    interleave=True,
):
    """Drive interleaved random transactions; record what each observed."""
    rng = random.Random(seed)
    store = TardisStore("A")
    sessions = [store.session("s%d" % i) for i in range(n_sessions)]
    end = end_constraint or SerializabilityConstraint()
    recorded = []
    open_txns = []
    issued = 0
    while issued < n_txns or open_txns:
        start_new = issued < n_txns and (not open_txns or rng.random() < 0.6)
        if start_new:
            session = rng.choice(sessions)
            txn = store.begin(AncestorConstraint(), session=session)
            reads, writes = {}, {}
            for _ in range(rng.randint(1, 4)):
                key = "k%d" % rng.randrange(n_keys)
                if rng.random() < 0.5:
                    seen = txn.get(key, default=0)
                    if key not in writes:
                        # record snapshot reads only: a read after this
                        # txn's own write returns the buffer, which the
                        # branch replay accounts for separately.
                        reads[key] = seen
                else:
                    value = rng.randrange(1000)
                    txn.put(key, value)
                    writes[key] = value
            open_txns.append((txn, reads, writes))
            issued += 1
            if interleave:
                continue
        txn, reads, writes = open_txns.pop(
            rng.randrange(len(open_txns)) if interleave else 0
        )
        try:
            commit_id = txn.commit(end)
        except TransactionAborted:
            continue
        recorded.append(RecordedTxn(commit_id, reads, writes))
    return store, recorded


def branch_states(store, leaf):
    """The states on the path(s) from the root to ``leaf``, id order."""
    states = store.dag.states_between(leaf, store.dag.root)
    return sorted(states, key=lambda s: s.id)


def check_branch_serializable(store, recorded, require_all_ro=True):
    """Replay each branch; every recorded read must match the replay.

    Update transactions replay in branch (= id) order. Read-only
    transactions do not create states — their commit id IS their read
    state — so they are checked against the replay snapshot taken right
    after that state, on any branch containing it.
    """
    updates = {t.commit_id: t for t in recorded if t.writes}
    readonly = [t for t in recorded if not t.writes]
    verified_ro = set()
    for leaf in store.dag.leaves():
        replay = {}
        snapshots = {store.dag.root.id: {}}
        for state in branch_states(store, leaf):
            txn = updates.get(state.id)
            if txn is not None:
                for key, seen in txn.reads.items():
                    expected = replay.get(key, 0)
                    assert seen == expected, (
                        "branch %r: txn %r read %r=%r, replay says %r"
                        % (leaf.id, txn.commit_id, key, seen, expected)
                    )
                replay.update(txn.writes)
            snapshots[state.id] = dict(replay)
        for index, txn in enumerate(readonly):
            snap = snapshots.get(txn.commit_id)
            if snap is None:
                continue
            for key, seen in txn.reads.items():
                assert seen == snap.get(key, 0), (
                    "read-only txn at %r read %r=%r, snapshot says %r"
                    % (txn.commit_id, key, seen, snap.get(key, 0))
                )
            verified_ro.add(index)
    if require_all_ro:
        assert len(verified_ro) == len(readonly)


class TestBranchSerializability:
    @pytest.mark.parametrize("seed", range(12))
    def test_interleaved_histories_serializable_per_branch(self, seed):
        store, recorded = run_random_history(seed)
        assert recorded
        check_branch_serializable(store, recorded)

    @pytest.mark.parametrize("seed", range(6))
    def test_sequential_histories_single_branch(self, seed):
        store, recorded = run_random_history(seed, interleave=False)
        # Without interleaving there are no conflicts: one branch only.
        assert len(store.dag.leaves()) == 1
        check_branch_serializable(store, recorded)

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_random_seeds(self, seed):
        store, recorded = run_random_history(
            seed, n_sessions=3, n_txns=30, n_keys=4
        )
        check_branch_serializable(store, recorded)

    @pytest.mark.parametrize("seed", range(6))
    def test_gc_transparency(self, seed):
        """Compression never changes what any branch can read (§6.3).

        Snapshot every key's visible value at every leaf, collect, and
        compare: promotion must redirect reads perfectly.
        """
        store, recorded = run_random_history(seed)
        keys = ["k%d" % i for i in range(6)]

        def leaf_views():
            views = {}
            for leaf in store.dag.leaves():
                view = {}
                for key in keys:
                    hit = store.versions.read_visible(key, leaf, store.dag)
                    view[key] = None if hit is None else hit[1]
                views[leaf.id] = view
            return views

        before = leaf_views()
        for session in store.sessions():
            session.place_ceiling()
        stats = store.collect_garbage()
        after = leaf_views()
        assert before == after
        # And the compressed store keeps serving new transactions.
        txn = store.begin(session=store.session("s0"))
        txn.put("post-gc", 1)
        txn.commit()


class TestSnapshotIsolationBranch:
    @pytest.mark.parametrize("seed", range(8))
    def test_no_lost_updates_within_branch(self, seed):
        """Under SI, two txns on one branch never both 'win' a key blind."""
        store, recorded = run_random_history(
            seed, end_constraint=SnapshotIsolationConstraint()
        )
        by_commit = {t.commit_id: t for t in recorded}
        for leaf in store.dag.leaves():
            states = branch_states(store, leaf)
            # First-committer-wins: within one branch, consecutive
            # writers of a key must have observed each other: the later
            # one's snapshot (read state) is a descendant of the earlier
            # writer's commit state.
            last_writer = {}
            for state in states:
                txn = by_commit.get(state.id)
                if txn is None:
                    continue
                for key in txn.writes:
                    if key in last_writer:
                        earlier = store.dag.get(last_writer[key])
                        if earlier is not None:
                            assert store.dag.descendant_check(earlier, state)
                    last_writer[key] = state.id


class TestSessionGuarantees:
    def test_read_my_writes(self):
        store = TardisStore("A")
        rng = random.Random(0)
        session = store.session("me")
        expected = {}
        for i in range(50):
            txn = store.begin(session=session)
            key = "k%d" % rng.randrange(5)
            # Ancestor guarantees this session's prior writes are visible.
            assert txn.get(key, default=None) == expected.get(key), i
            value = "v%d" % i
            txn.put(key, value)
            txn.commit()
            expected[key] = value

    def test_monotonic_reads_within_session(self):
        """Once a session observes a value, it never reads older state."""
        store = TardisStore("A")
        writer = store.session("writer")
        reader = store.session("reader")
        observed = []
        for i in range(20):
            t = store.begin(session=writer)
            t.put("x", i)
            t.commit()
            r = store.begin(session=reader, read_only=True)
            observed.append(r.get("x"))
            r.commit()
        assert observed == sorted(observed)

    def test_branch_isolation_between_sessions(self):
        """Two sessions on divergent branches never see each other."""
        store = TardisStore("A")
        a, b = store.session("a"), store.session("b")
        store.put("x", 0, session=a)
        ta, tb = store.begin(session=a), store.begin(session=b)
        ta.put("x", ta.get("x") + 1)
        tb.put("x", tb.get("x") + 1)
        ta.commit()
        tb.commit()
        for i in range(10):
            ta = store.begin(session=a)
            tb = store.begin(session=b)
            va, vb = ta.get("x"), tb.get("x")
            ta.put("x", va + 1)
            tb.put("x", vb + 1)
            ta.commit()
            tb.commit()
        # Each branch counted its own increments only.
        assert store.begin(session=a, read_only=True).get("x") == 11
        assert store.begin(session=b, read_only=True).get("x") == 11
        assert len(store.dag.leaves()) == 2
